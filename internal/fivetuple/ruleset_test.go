package fivetuple

import (
	"bytes"
	"strings"
	"testing"
)

// sampleRules builds a small hand-written filter set exercising all match
// syntaxes: prefixes of several lengths, exact ports, ranges, wildcards and
// exact/wildcard protocols.
func sampleRules() []Rule {
	return []Rule{
		{
			SrcPrefix: MustParsePrefix("10.0.0.0/8"),
			DstPrefix: MustParsePrefix("192.168.1.0/24"),
			SrcPort:   WildcardPortRange(),
			DstPort:   ExactPort(80),
			Protocol:  ExactProtocol(ProtoTCP),
			Action:    ActionForward,
		},
		{
			SrcPrefix: MustParsePrefix("10.0.0.0/8"),
			DstPrefix: MustParsePrefix("192.168.0.0/16"),
			SrcPort:   WildcardPortRange(),
			DstPort:   PortRange{Lo: 1024, Hi: 2048},
			Protocol:  ExactProtocol(ProtoUDP),
			Action:    ActionModify,
		},
		{
			SrcPrefix: MustParsePrefix("172.16.5.4/32"),
			DstPrefix: MustParsePrefix("0.0.0.0/0"),
			SrcPort:   ExactPort(53),
			DstPort:   ExactPort(53),
			Protocol:  ExactProtocol(ProtoUDP),
			Action:    ActionDrop,
		},
		{
			SrcPrefix: MustParsePrefix("0.0.0.0/0"),
			DstPrefix: MustParsePrefix("192.168.1.0/24"),
			SrcPort:   WildcardPortRange(),
			DstPort:   ExactPort(443),
			Protocol:  ExactProtocol(ProtoTCP),
			Action:    ActionForward,
		},
		Wildcard(4, ActionDrop),
	}
}

func TestRuleMatches(t *testing.T) {
	rules := sampleRules()
	tests := []struct {
		name string
		rule int
		h    Header
		want bool
	}{
		{
			name: "web rule hits",
			rule: 0,
			h:    Header{SrcIP: MustParseIPv4("10.1.2.3"), DstIP: MustParseIPv4("192.168.1.9"), SrcPort: 31000, DstPort: 80, Protocol: ProtoTCP},
			want: true,
		},
		{
			name: "web rule misses wrong protocol",
			rule: 0,
			h:    Header{SrcIP: MustParseIPv4("10.1.2.3"), DstIP: MustParseIPv4("192.168.1.9"), SrcPort: 31000, DstPort: 80, Protocol: ProtoUDP},
			want: false,
		},
		{
			name: "web rule misses wrong dst port",
			rule: 0,
			h:    Header{SrcIP: MustParseIPv4("10.1.2.3"), DstIP: MustParseIPv4("192.168.1.9"), SrcPort: 31000, DstPort: 81, Protocol: ProtoTCP},
			want: false,
		},
		{
			name: "udp range rule hits low edge",
			rule: 1,
			h:    Header{SrcIP: MustParseIPv4("10.9.9.9"), DstIP: MustParseIPv4("192.168.200.1"), SrcPort: 5, DstPort: 1024, Protocol: ProtoUDP},
			want: true,
		},
		{
			name: "udp range rule misses below range",
			rule: 1,
			h:    Header{SrcIP: MustParseIPv4("10.9.9.9"), DstIP: MustParseIPv4("192.168.200.1"), SrcPort: 5, DstPort: 1023, Protocol: ProtoUDP},
			want: false,
		},
		{
			name: "dns rule needs exact source ip",
			rule: 2,
			h:    Header{SrcIP: MustParseIPv4("172.16.5.5"), DstIP: MustParseIPv4("8.8.8.8"), SrcPort: 53, DstPort: 53, Protocol: ProtoUDP},
			want: false,
		},
		{
			name: "default rule matches anything",
			rule: 4,
			h:    Header{SrcIP: MustParseIPv4("203.0.113.77"), DstIP: MustParseIPv4("198.51.100.1"), SrcPort: 1, DstPort: 2, Protocol: 250},
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := rules[tt.rule].Matches(tt.h); got != tt.want {
				t.Errorf("rule %d Matches(%s) = %v, want %v", tt.rule, tt.h, got, tt.want)
			}
		})
	}
}

func TestRuleSetClassifyReturnsHPMR(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	// Header matched by rule 0, rule 3 (dst 443 doesn't match) and the
	// default rule 4: the HPMR must be rule 0.
	h := Header{SrcIP: MustParseIPv4("10.1.2.3"), DstIP: MustParseIPv4("192.168.1.9"), SrcPort: 31000, DstPort: 80, Protocol: ProtoTCP}
	idx, ok := rs.Classify(h)
	if !ok || idx != 0 {
		t.Fatalf("Classify() = (%d, %v), want (0, true)", idx, ok)
	}
	matches := rs.MatchingRules(h)
	if len(matches) != 2 || matches[0] != 0 || matches[1] != 4 {
		t.Errorf("MatchingRules() = %v, want [0 4]", matches)
	}
}

func TestRuleSetClassifyNoDefault(t *testing.T) {
	rules := sampleRules()[:4] // drop the default rule
	rs := NewRuleSet("nodefault", rules)
	h := Header{SrcIP: MustParseIPv4("203.0.113.1"), DstIP: MustParseIPv4("198.51.100.2"), SrcPort: 9, DstPort: 9, Protocol: ProtoGRE}
	if _, ok := rs.Classify(h); ok {
		t.Error("Classify() reported a match for a header no rule matches")
	}
}

func TestRuleSetInsertRemove(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	originalLen := rs.Len()

	newRule := Rule{
		SrcPrefix: MustParsePrefix("10.0.0.0/8"),
		DstPrefix: MustParsePrefix("192.168.1.0/24"),
		SrcPort:   WildcardPortRange(),
		DstPort:   ExactPort(80),
		Protocol:  ExactProtocol(ProtoTCP),
		Action:    ActionDrop,
	}
	rs.Insert(0, newRule)
	if rs.Len() != originalLen+1 {
		t.Fatalf("Len() after insert = %d, want %d", rs.Len(), originalLen+1)
	}
	// The new highest-priority rule shadows the old rule 0.
	h := Header{SrcIP: MustParseIPv4("10.1.2.3"), DstIP: MustParseIPv4("192.168.1.9"), SrcPort: 31000, DstPort: 80, Protocol: ProtoTCP}
	idx, ok := rs.Classify(h)
	if !ok || idx != 0 || rs.Rule(idx).Action != ActionDrop {
		t.Fatalf("after insert Classify() = (%d, %v) action %v, want rule 0 with drop", idx, ok, rs.Rule(idx).Action)
	}
	// Priorities must be contiguous after mutation.
	for i, r := range rs.Rules() {
		if r.Priority != i {
			t.Errorf("rule %d has priority %d after insert", i, r.Priority)
		}
	}

	rs.Remove(0)
	if rs.Len() != originalLen {
		t.Fatalf("Len() after remove = %d, want %d", rs.Len(), originalLen)
	}
	idx, ok = rs.Classify(h)
	if !ok || idx != 0 || rs.Rule(idx).Action != ActionForward {
		t.Fatalf("after remove Classify() = (%d, %v), want original rule 0", idx, ok)
	}
}

func TestRuleSetInsertRemovePanicOnBadIndex(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	assertPanics(t, "Insert(-1)", func() { rs.Insert(-1, Rule{}) })
	assertPanics(t, "Insert(too large)", func() { rs.Insert(rs.Len()+1, Rule{}) })
	assertPanics(t, "Remove(-1)", func() { rs.Remove(-1) })
	assertPanics(t, "Remove(len)", func() { rs.Remove(rs.Len()) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestUniqueFieldValues(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	tests := []struct {
		field Field
		want  int
	}{
		{FieldSrcIP, 3},    // 10/8, 172.16.5.4/32, wildcard
		{FieldDstIP, 3},    // 192.168.1/24, 192.168/16, wildcard
		{FieldSrcPort, 2},  // wildcard, 53
		{FieldDstPort, 5},  // 80, 1024-2048, 53, 443, wildcard
		{FieldProtocol, 3}, // tcp, udp, wildcard
	}
	for _, tt := range tests {
		t.Run(tt.field.String(), func(t *testing.T) {
			if got := rs.UniqueFieldCount(tt.field); got != tt.want {
				t.Errorf("UniqueFieldCount(%s) = %d, want %d", tt.field, got, tt.want)
			}
			if got := len(rs.UniqueFieldValues(tt.field)); got != tt.want {
				t.Errorf("len(UniqueFieldValues(%s)) = %d, want %d", tt.field, got, tt.want)
			}
		})
	}
}

func TestFieldKeyCanonicalises(t *testing.T) {
	// Two prefixes with different host bits but the same network must share a
	// field key; this is what keeps label tables free of duplicates.
	a := Rule{SrcPrefix: MustParsePrefix("10.1.2.3/8")}
	b := Rule{SrcPrefix: MustParsePrefix("10.9.9.9/8")}
	if a.FieldKey(FieldSrcIP) != b.FieldKey(FieldSrcIP) {
		t.Errorf("equivalent prefixes produced different field keys: %q vs %q",
			a.FieldKey(FieldSrcIP), b.FieldKey(FieldSrcIP))
	}
	if got := (Rule{}).FieldKey(Field(42)); got != "" {
		t.Errorf("unknown field key = %q, want empty", got)
	}
}

func TestStatistics(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	stats := rs.Statistics()
	if len(stats) != NumFields {
		t.Fatalf("Statistics() returned %d entries, want %d", len(stats), NumFields)
	}
	byField := make(map[Field]FieldStatistics, len(stats))
	for _, s := range stats {
		byField[s.Field] = s
	}
	srcIP := byField[FieldSrcIP]
	if srcIP.PrefixLengthHistogram[8] != 2 {
		t.Errorf("srcIP /8 histogram = %d, want 2", srcIP.PrefixLengthHistogram[8])
	}
	if srcIP.ExactMatches != 1 {
		t.Errorf("srcIP exact matches = %d, want 1", srcIP.ExactMatches)
	}
	dstPort := byField[FieldDstPort]
	if dstPort.ExactMatches != 3 || dstPort.RangeRules != 1 || dstPort.Wildcards != 1 {
		t.Errorf("dstPort stats = %+v, want 3 exact / 1 range / 1 wildcard", dstPort)
	}
	proto := byField[FieldProtocol]
	if proto.ExactMatches != 4 || proto.Wildcards != 1 {
		t.Errorf("protocol stats = %+v, want 4 exact / 1 wildcard", proto)
	}
}

func TestOverlapDegree(t *testing.T) {
	// Identical rules overlap fully.
	r := sampleRules()[0]
	rs := NewRuleSet("dup", []Rule{r, r, r})
	if got := rs.OverlapDegree(); got != 1 {
		t.Errorf("OverlapDegree() of identical rules = %v, want 1", got)
	}
	// Disjoint source prefixes never overlap.
	a := r
	a.SrcPrefix = MustParsePrefix("10.0.0.0/8")
	b := r
	b.SrcPrefix = MustParsePrefix("11.0.0.0/8")
	rs = NewRuleSet("disjoint", []Rule{a, b})
	if got := rs.OverlapDegree(); got != 0 {
		t.Errorf("OverlapDegree() of disjoint rules = %v, want 0", got)
	}
	single := NewRuleSet("single", []Rule{a})
	if got := single.OverlapDegree(); got != 0 {
		t.Errorf("OverlapDegree() of single rule = %v, want 0", got)
	}
}

func TestSortedPrefixLengths(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	got := rs.SortedPrefixLengths(FieldSrcIP)
	want := []uint8{0, 8, 32}
	if len(got) != len(want) {
		t.Fatalf("SortedPrefixLengths(srcIP) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedPrefixLengths(srcIP) = %v, want %v", got, want)
		}
	}
	if rs.SortedPrefixLengths(FieldProtocol) != nil {
		t.Error("SortedPrefixLengths on non-IP field should be nil")
	}
}

func TestActionRoundTrip(t *testing.T) {
	for _, a := range []Action{ActionForward, ActionDrop, ActionModify, ActionGroup, ActionController} {
		parsed, err := ParseAction(a.String())
		if err != nil {
			t.Fatalf("ParseAction(%q) error: %v", a.String(), err)
		}
		if parsed != a {
			t.Errorf("ParseAction(%q) = %v, want %v", a.String(), parsed, a)
		}
	}
	if _, err := ParseAction("explode"); err == nil {
		t.Error("ParseAction of unknown action should fail")
	}
	if got := Action(200).String(); got != "Action(200)" {
		t.Errorf("unknown action String() = %q", got)
	}
}

func TestClassBenchRoundTrip(t *testing.T) {
	rs := NewRuleSet("sample", sampleRules())
	var buf bytes.Buffer
	if err := rs.WriteClassBench(&buf); err != nil {
		t.Fatalf("WriteClassBench: %v", err)
	}
	parsed, err := ParseClassBench(&buf)
	if err != nil {
		t.Fatalf("ParseClassBench: %v", err)
	}
	if parsed.Len() != rs.Len() {
		t.Fatalf("round-trip rule count = %d, want %d", parsed.Len(), rs.Len())
	}
	for i := 0; i < rs.Len(); i++ {
		a, b := rs.Rule(i), parsed.Rule(i)
		if a.SrcPrefix.Canonical() != b.SrcPrefix.Canonical() ||
			a.DstPrefix.Canonical() != b.DstPrefix.Canonical() ||
			a.SrcPort != b.SrcPort || a.DstPort != b.DstPort ||
			a.Protocol != b.Protocol {
			t.Errorf("rule %d did not round-trip:\n  wrote %s\n  read  %s", i, a, b)
		}
	}
}

func TestParseClassBenchRejectsMalformedInput(t *testing.T) {
	tests := []struct {
		name string
		line string
	}{
		{name: "missing @", line: "10.0.0.0/8 10.0.0.0/8 0 : 65535 0 : 65535 0x06/0xFF"},
		{name: "too few fields", line: "@10.0.0.0/8 10.0.0.0/8 0 : 65535"},
		{name: "bad source prefix", line: "@10.0.0/8 10.0.0.0/8 0 : 65535 0 : 65535 0x06/0xFF"},
		{name: "bad destination prefix", line: "@10.0.0.0/8 10.0.0.0/99 0 : 65535 0 : 65535 0x06/0xFF"},
		{name: "bad port separator", line: "@10.0.0.0/8 10.0.0.0/8 0 - 65535 0 : 65535 0x06/0xFF"},
		{name: "bad port value", line: "@10.0.0.0/8 10.0.0.0/8 x : 65535 0 : 65535 0x06/0xFF"},
		{name: "bad protocol", line: "@10.0.0.0/8 10.0.0.0/8 0 : 65535 0 : 65535 zz"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseClassBenchRule(tt.line); err == nil {
				t.Errorf("ParseClassBenchRule(%q) succeeded, want error", tt.line)
			}
		})
	}
	// Parse of a whole reader reports the failing line number.
	_, err := ParseClassBench(strings.NewReader("# comment\n\n@bad\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("ParseClassBench error = %v, want line-3 failure", err)
	}
}

func TestParseClassBenchSkipsCommentsAndBlankLines(t *testing.T) {
	input := "# acl1 sample\n\n@10.0.0.0/8\t192.168.1.0/24\t0 : 65535\t80 : 80\t0x06/0xFF\n"
	rs, err := ParseClassBench(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseClassBench: %v", err)
	}
	if rs.Len() != 1 {
		t.Fatalf("parsed %d rules, want 1", rs.Len())
	}
	r := rs.Rule(0)
	if r.DstPort != ExactPort(80) || r.Protocol.Value != ProtoTCP {
		t.Errorf("parsed rule = %s, want dst port 80 tcp", r)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	headers := []Header{
		{SrcIP: MustParseIPv4("10.1.2.3"), DstIP: MustParseIPv4("192.168.1.9"), SrcPort: 31000, DstPort: 80, Protocol: ProtoTCP},
		{SrcIP: 0, DstIP: 0xFFFFFFFF, SrcPort: 0, DstPort: 65535, Protocol: 255},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, headers); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	parsed, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(parsed) != len(headers) {
		t.Fatalf("round-trip header count = %d, want %d", len(parsed), len(headers))
	}
	for i := range headers {
		if parsed[i] != headers[i] {
			t.Errorf("header %d = %+v, want %+v", i, parsed[i], headers[i])
		}
	}
}

func TestParseTraceRejectsMalformedInput(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("ParseTrace with missing fields should fail")
	}
	if _, err := ParseTrace(strings.NewReader("1 2 3 4 x\n")); err == nil {
		t.Error("ParseTrace with non-numeric field should fail")
	}
}

func TestWildcardRule(t *testing.T) {
	w := Wildcard(7, ActionDrop)
	if w.Priority != 7 || w.Action != ActionDrop {
		t.Errorf("Wildcard() = %+v", w)
	}
	headers := []Header{
		{},
		{SrcIP: 0xFFFFFFFF, DstIP: 0xFFFFFFFF, SrcPort: 65535, DstPort: 65535, Protocol: 255},
		{SrcIP: MustParseIPv4("8.8.8.8"), DstIP: MustParseIPv4("1.1.1.1"), SrcPort: 123, DstPort: 53, Protocol: ProtoUDP},
	}
	for _, h := range headers {
		if !w.Matches(h) {
			t.Errorf("wildcard rule should match %s", h)
		}
	}
}

func TestCoverageWeight(t *testing.T) {
	r := sampleRules()[0]
	if got := r.CoverageWeight(FieldSrcIP); got != float64(uint64(1)<<24) {
		t.Errorf("CoverageWeight(srcIP) = %v, want 2^24", got)
	}
	if got := r.CoverageWeight(FieldDstPort); got != 1 {
		t.Errorf("CoverageWeight(dstPort) = %v, want 1", got)
	}
	if got := r.CoverageWeight(FieldSrcPort); got != 65536 {
		t.Errorf("CoverageWeight(srcPort) = %v, want 65536", got)
	}
	if got := r.CoverageWeight(FieldProtocol); got != 1 {
		t.Errorf("CoverageWeight(protocol) = %v, want 1", got)
	}
	wild := Wildcard(0, ActionDrop)
	if got := wild.CoverageWeight(FieldProtocol); got != 256 {
		t.Errorf("CoverageWeight(wildcard protocol) = %v, want 256", got)
	}
	if got := wild.CoverageWeight(Field(99)); got != 0 {
		t.Errorf("CoverageWeight(unknown) = %v, want 0", got)
	}
}
