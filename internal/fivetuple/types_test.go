package fivetuple

import (
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    IPv4
		wantErr bool
	}{
		{name: "zero", in: "0.0.0.0", want: 0},
		{name: "loopback", in: "127.0.0.1", want: 0x7F000001},
		{name: "broadcast", in: "255.255.255.255", want: 0xFFFFFFFF},
		{name: "private", in: "192.168.1.42", want: 0xC0A8012A},
		{name: "too few octets", in: "10.0.0", wantErr: true},
		{name: "too many octets", in: "10.0.0.0.1", wantErr: true},
		{name: "octet overflow", in: "10.0.0.256", wantErr: true},
		{name: "not a number", in: "a.b.c.d", wantErr: true},
		{name: "empty", in: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseIPv4(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseIPv4(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParseIPv4(%q) = %#x, want %#x", tt.in, uint32(got), uint32(tt.want))
			}
		})
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		addr := IPv4(v)
		back, err := ParseIPv4(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4Segments(t *testing.T) {
	addr := MustParseIPv4("10.20.30.40")
	if got, want := addr.High16(), uint16(0x0A14); got != want {
		t.Errorf("High16() = %#x, want %#x", got, want)
	}
	if got, want := addr.Low16(), uint16(0x1E28); got != want {
		t.Errorf("Low16() = %#x, want %#x", got, want)
	}
	f := func(v uint32) bool {
		a := IPv4(v)
		return uint32(a.High16())<<16|uint32(a.Low16()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    Prefix
		wantErr bool
	}{
		{name: "slash 8", in: "10.0.0.0/8", want: Prefix{Addr: 0x0A000000, Len: 8}},
		{name: "slash 0", in: "0.0.0.0/0", want: Prefix{Addr: 0, Len: 0}},
		{name: "slash 32", in: "1.2.3.4/32", want: Prefix{Addr: 0x01020304, Len: 32}},
		{name: "bare address defaults to 32", in: "1.2.3.4", want: Prefix{Addr: 0x01020304, Len: 32}},
		{name: "length too large", in: "1.2.3.4/33", wantErr: true},
		{name: "bad address", in: "1.2.3/8", wantErr: true},
		{name: "bad length", in: "1.2.3.4/x", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParsePrefix(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParsePrefix(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParsePrefix(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestPrefixMatches(t *testing.T) {
	tests := []struct {
		name   string
		prefix string
		addr   string
		want   bool
	}{
		{name: "inside /8", prefix: "10.0.0.0/8", addr: "10.200.3.4", want: true},
		{name: "outside /8", prefix: "10.0.0.0/8", addr: "11.0.0.1", want: false},
		{name: "wildcard matches anything", prefix: "0.0.0.0/0", addr: "203.0.113.9", want: true},
		{name: "exact match", prefix: "1.2.3.4/32", addr: "1.2.3.4", want: true},
		{name: "exact mismatch", prefix: "1.2.3.4/32", addr: "1.2.3.5", want: false},
		{name: "host bits in prefix ignored", prefix: "10.9.9.9/8", addr: "10.1.2.3", want: true},
		{name: "boundary /31", prefix: "192.0.2.0/31", addr: "192.0.2.1", want: true},
		{name: "boundary /31 miss", prefix: "192.0.2.0/31", addr: "192.0.2.2", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := MustParsePrefix(tt.prefix)
			a := MustParseIPv4(tt.addr)
			if got := p.Matches(a); got != tt.want {
				t.Errorf("%s.Matches(%s) = %v, want %v", p, a, got, tt.want)
			}
		})
	}
}

func TestPrefixContainsOverlaps(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	p16other := MustParsePrefix("11.1.0.0/16")
	if !p8.Contains(p16) {
		t.Errorf("%s should contain %s", p8, p16)
	}
	if p16.Contains(p8) {
		t.Errorf("%s should not contain %s", p16, p8)
	}
	if p8.Contains(p16other) {
		t.Errorf("%s should not contain %s", p8, p16other)
	}
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Errorf("%s and %s should overlap symmetrically", p8, p16)
	}
	if p16.Overlaps(p16other) {
		t.Errorf("%s and %s should not overlap", p16, p16other)
	}
}

func TestPrefixContainsImpliesMatches(t *testing.T) {
	f := func(addr uint32, rawLenA, rawLenB uint8) bool {
		lenA := rawLenA % 33
		lenB := rawLenB % 33
		a := Prefix{Addr: IPv4(addr), Len: lenA}.Canonical()
		b := Prefix{Addr: IPv4(addr), Len: lenB}.Canonical()
		// The shorter (or equal) prefix derived from the same address always
		// contains the longer one.
		if lenA <= lenB {
			return a.Contains(b)
		}
		return b.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixSegments(t *testing.T) {
	tests := []struct {
		name       string
		prefix     string
		wantHi     uint16
		wantHiBits uint8
		wantLo     uint16
		wantLoBits uint8
	}{
		{name: "/24 splits 16+8", prefix: "192.168.7.0/24", wantHi: 0xC0A8, wantHiBits: 16, wantLo: 0x0700, wantLoBits: 8},
		{name: "/8 stays high", prefix: "10.0.0.0/8", wantHi: 0x0A00, wantHiBits: 8, wantLo: 0, wantLoBits: 0},
		{name: "/16 exactly high", prefix: "172.16.0.0/16", wantHi: 0xAC10, wantHiBits: 16, wantLo: 0, wantLoBits: 0},
		{name: "/32 both full", prefix: "1.2.3.4/32", wantHi: 0x0102, wantHiBits: 16, wantLo: 0x0304, wantLoBits: 16},
		{name: "/0 wildcard", prefix: "0.0.0.0/0", wantHi: 0, wantHiBits: 0, wantLo: 0, wantLoBits: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := MustParsePrefix(tt.prefix)
			hi, hiBits := p.HighSegment()
			lo, loBits := p.LowSegment()
			if hi != tt.wantHi || hiBits != tt.wantHiBits {
				t.Errorf("HighSegment() = (%#x, %d), want (%#x, %d)", hi, hiBits, tt.wantHi, tt.wantHiBits)
			}
			if lo != tt.wantLo || loBits != tt.wantLoBits {
				t.Errorf("LowSegment() = (%#x, %d), want (%#x, %d)", lo, loBits, tt.wantLo, tt.wantLoBits)
			}
		})
	}
}

func TestParsePortRange(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    PortRange
		wantErr bool
	}{
		{name: "wildcard", in: "0 : 65535", want: PortRange{0, 65535}},
		{name: "exact via range", in: "80 : 80", want: PortRange{80, 80}},
		{name: "single value", in: "443", want: PortRange{443, 443}},
		{name: "range", in: "1024 : 2048", want: PortRange{1024, 2048}},
		{name: "no spaces", in: "5:10", want: PortRange{5, 10}},
		{name: "inverted", in: "10 : 5", wantErr: true},
		{name: "overflow", in: "0 : 70000", wantErr: true},
		{name: "garbage", in: "a : b", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParsePortRange(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParsePortRange(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParsePortRange(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestPortRangePredicates(t *testing.T) {
	wild := WildcardPortRange()
	if !wild.IsWildcard() || wild.IsExact() {
		t.Errorf("wildcard range misclassified: %+v", wild)
	}
	exact := ExactPort(8080)
	if !exact.IsExact() || exact.IsWildcard() {
		t.Errorf("exact range misclassified: %+v", exact)
	}
	if got, want := exact.Width(), uint32(1); got != want {
		t.Errorf("exact.Width() = %d, want %d", got, want)
	}
	if got, want := wild.Width(), uint32(65536); got != want {
		t.Errorf("wild.Width() = %d, want %d", got, want)
	}
	r := PortRange{Lo: 100, Hi: 200}
	if !r.Contains(PortRange{Lo: 150, Hi: 160}) {
		t.Error("range should contain sub-range")
	}
	if r.Contains(PortRange{Lo: 150, Hi: 250}) {
		t.Error("range should not contain straddling range")
	}
	if !r.Overlaps(PortRange{Lo: 150, Hi: 250}) {
		t.Error("range should overlap straddling range")
	}
	if r.Overlaps(PortRange{Lo: 300, Hi: 400}) {
		t.Error("disjoint ranges should not overlap")
	}
}

func TestPortRangeMatchesProperty(t *testing.T) {
	f := func(lo, hi, p uint16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		r := PortRange{Lo: lo, Hi: hi}
		return r.Matches(p) == (p >= lo && p <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseProtocolMatch(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    ProtocolMatch
		wantErr bool
	}{
		{name: "tcp", in: "0x06/0xFF", want: ProtocolMatch{Value: 6, Mask: 0xFF}},
		{name: "wildcard", in: "0x00/0x00", want: ProtocolMatch{Value: 0, Mask: 0}},
		{name: "decimal exact", in: "17", want: ProtocolMatch{Value: 17, Mask: 0xFF}},
		{name: "overflow", in: "0x1FF/0xFF", wantErr: true},
		{name: "garbage", in: "tcp", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseProtocolMatch(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseProtocolMatch(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParseProtocolMatch(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestProtocolMatchSemantics(t *testing.T) {
	tcp := ExactProtocol(ProtoTCP)
	if !tcp.Matches(ProtoTCP) || tcp.Matches(ProtoUDP) {
		t.Errorf("exact protocol match misbehaved: %+v", tcp)
	}
	wild := WildcardProtocol()
	for _, v := range []uint8{0, 1, 6, 17, 255} {
		if !wild.Matches(v) {
			t.Errorf("wildcard protocol should match %d", v)
		}
	}
	if !tcp.IsExact() || tcp.IsWildcard() {
		t.Errorf("exact protocol misclassified: %+v", tcp)
	}
	if !wild.IsWildcard() || wild.IsExact() {
		t.Errorf("wildcard protocol misclassified: %+v", wild)
	}
}

func TestFieldString(t *testing.T) {
	names := map[Field]string{
		FieldSrcIP:    "srcIP",
		FieldDstIP:    "dstIP",
		FieldSrcPort:  "srcPort",
		FieldDstPort:  "dstPort",
		FieldProtocol: "protocol",
	}
	for f, want := range names {
		if got := f.String(); got != want {
			t.Errorf("Field(%d).String() = %q, want %q", f, got, want)
		}
	}
	if got := Field(99).String(); got != "Field(99)" {
		t.Errorf("unknown field String() = %q", got)
	}
	if len(Fields()) != NumFields {
		t.Errorf("Fields() returned %d fields, want %d", len(Fields()), NumFields)
	}
}
