package fivetuple

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ClassBench text format
//
// Each rule occupies one line beginning with '@':
//
//	@10.0.0.0/8  192.168.1.0/24  0 : 65535  80 : 80  0x06/0xFF
//
// in the order source prefix, destination prefix, source-port range,
// destination-port range, protocol value/mask. Some generators append extra
// flag columns; they are preserved on parse and re-emitted verbatim so filter
// files round-trip.

// ParseClassBench reads a filter set in ClassBench text format. Blank lines
// and lines starting with '#' are ignored. The first rule in the file gets
// priority 0 (highest).
func ParseClassBench(r io.Reader) (*RuleSet, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var rules []Rule
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseClassBenchRule(line)
		if err != nil {
			return nil, fmt.Errorf("fivetuple: line %d: %w", lineNo, err)
		}
		rules = append(rules, rule)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("fivetuple: reading filter set: %w", err)
	}
	return NewRuleSet("classbench", rules), nil
}

// ParseClassBenchRule parses one '@'-prefixed rule line.
func ParseClassBenchRule(line string) (Rule, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "@") {
		return Rule{}, fmt.Errorf("rule line must start with '@': %q", line)
	}
	fields := strings.Fields(line[1:])
	// Expected layout:
	//   0: src prefix
	//   1: dst prefix
	//   2 3 4: src port "lo : hi"
	//   5 6 7: dst port "lo : hi"
	//   8: protocol value/mask
	//   9+: optional flag columns (ignored)
	if len(fields) < 9 {
		return Rule{}, fmt.Errorf("rule line has %d fields, want at least 9: %q", len(fields), line)
	}
	var (
		rule Rule
		err  error
	)
	if rule.SrcPrefix, err = ParsePrefix(fields[0]); err != nil {
		return Rule{}, fmt.Errorf("source prefix: %w", err)
	}
	if rule.DstPrefix, err = ParsePrefix(fields[1]); err != nil {
		return Rule{}, fmt.Errorf("destination prefix: %w", err)
	}
	if fields[3] != ":" || fields[6] != ":" {
		return Rule{}, fmt.Errorf("port ranges must use 'lo : hi' syntax: %q", line)
	}
	if rule.SrcPort, err = ParsePortRange(fields[2] + " : " + fields[4]); err != nil {
		return Rule{}, fmt.Errorf("source port: %w", err)
	}
	if rule.DstPort, err = ParsePortRange(fields[5] + " : " + fields[7]); err != nil {
		return Rule{}, fmt.Errorf("destination port: %w", err)
	}
	if rule.Protocol, err = ParseProtocolMatch(fields[8]); err != nil {
		return Rule{}, fmt.Errorf("protocol: %w", err)
	}
	rule.Action = ActionForward
	return rule, nil
}

// WriteClassBench writes the rule set in ClassBench text format, one rule per
// line in priority order.
func (rs *RuleSet) WriteClassBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs.rules {
		if _, err := fmt.Fprintf(bw, "@%s\t%s\t%s\t%s\t%s\n",
			r.SrcPrefix, r.DstPrefix, r.SrcPort, r.DstPort, r.Protocol); err != nil {
			return fmt.Errorf("fivetuple: writing filter set: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fivetuple: writing filter set: %w", err)
	}
	return nil
}

// ParseTrace reads a packet-header trace in the ClassBench trace format: one
// header per line with whitespace-separated decimal fields
//
//	srcIP dstIP srcPort dstPort protocol [matchedRule]
//
// where IPs are 32-bit decimal integers. A trailing matched-rule column, if
// present, is ignored. Every field is range-checked: a port above 65535, a
// protocol above 255 or an address above 2^32-1 is an error, not a silent
// truncation into a different header.
func ParseTrace(r io.Reader) ([]Header, error) {
	// traceFieldMax holds the inclusive upper bound of each header column.
	traceFieldMax := [5]uint64{1<<32 - 1, 1<<32 - 1, 65535, 65535, 255}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var headers []Header
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("fivetuple: trace line %d has %d fields, want at least 5", lineNo, len(fields))
		}
		var vals [5]uint64
		for i := 0; i < 5; i++ {
			v, err := parseUint(fields[i])
			if err != nil {
				return nil, fmt.Errorf("fivetuple: trace line %d field %d: %w", lineNo, i, err)
			}
			if v > traceFieldMax[i] {
				return nil, fmt.Errorf("fivetuple: trace line %d field %d: value %d exceeds maximum %d",
					lineNo, i, v, traceFieldMax[i])
			}
			vals[i] = v
		}
		headers = append(headers, Header{
			SrcIP:    IPv4(vals[0]),
			DstIP:    IPv4(vals[1]),
			SrcPort:  uint16(vals[2]),
			DstPort:  uint16(vals[3]),
			Protocol: uint8(vals[4]),
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("fivetuple: reading trace: %w", err)
	}
	return headers, nil
}

// parseUint parses a strictly decimal unsigned integer. Unlike the previous
// hand-rolled digit loop it rejects overflow instead of wrapping, so an
// absurdly long digit string cannot alias onto a small in-range value.
func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid unsigned integer %q", s)
	}
	return v, nil
}

// WriteTrace writes headers in the ClassBench trace format.
func WriteTrace(w io.Writer, headers []Header) error {
	bw := bufio.NewWriter(w)
	for _, h := range headers {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\n",
			uint32(h.SrcIP), uint32(h.DstIP), h.SrcPort, h.DstPort, h.Protocol); err != nil {
			return fmt.Errorf("fivetuple: writing trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fivetuple: writing trace: %w", err)
	}
	return nil
}
