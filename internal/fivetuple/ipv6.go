package fivetuple

import (
	"fmt"
	"net/netip"
)

// Family identifies the IP address family a header carries. The zero value is
// FamilyIPv4, so every pre-existing five-tuple header (and every header
// decoded from legacy wire formats) keeps its meaning unchanged.
type Family uint8

// Address families.
const (
	// FamilyIPv4 marks a header whose addresses are the 32-bit SrcIP/DstIP
	// fields.
	FamilyIPv4 Family = iota
	// FamilyIPv6 marks a header whose addresses are the 128-bit
	// SrcIP6/DstIP6 fields; the 32-bit fields are ignored.
	FamilyIPv6
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyIPv4:
		return "ipv4"
	case FamilyIPv6:
		return "ipv6"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// IPv6 is a 128-bit IPv6 address in host bit order, split into two 64-bit
// words (Hi holds the first eight bytes). The representation is comparable,
// so headers carrying it remain valid map and cache keys.
type IPv6 struct {
	Hi uint64
	Lo uint64
}

// ParseIPv6 parses a textual IPv6 address such as "2001:db8::1".
func ParseIPv6(s string) (IPv6, error) {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is6() || a.Is4In6() {
		return IPv6{}, fmt.Errorf("fivetuple: invalid IPv6 address %q", s)
	}
	b := a.As16()
	var v IPv6
	for i := 0; i < 8; i++ {
		v.Hi = v.Hi<<8 | uint64(b[i])
		v.Lo = v.Lo<<8 | uint64(b[i+8])
	}
	return v, nil
}

// MustParseIPv6 is like ParseIPv6 but panics on malformed input.
func MustParseIPv6(s string) IPv6 {
	v, err := ParseIPv6(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the address in canonical RFC 5952 form.
func (a IPv6) String() string {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(a.Hi >> (56 - 8*i))
		b[i+8] = byte(a.Lo >> (56 - 8*i))
	}
	return netip.AddrFrom16(b).String()
}

// IsZero reports whether the address is all-zeros (::).
func (a IPv6) IsZero() bool { return a.Hi == 0 && a.Lo == 0 }

// TopByte returns the most significant byte of the address — the steering
// byte of the src-byte shard partition strategy.
func (a IPv6) TopByte() uint8 { return uint8(a.Hi >> 56) }

// Prefix6 is an IPv6 prefix (address plus prefix length), e.g. 2001:db8::/32.
// Len == 0 is the wildcard; a rule whose Src6/Dst6 prefixes are both
// wildcards carries no IPv6 constraint at all.
type Prefix6 struct {
	// Addr is the prefix network address. Bits beyond Len are ignored by
	// Matches but preserved verbatim; Canonical clears them.
	Addr IPv6
	// Len is the prefix length in bits, 0..128.
	Len uint8
}

// ParsePrefix6 parses "addr/len". A bare address is treated as /128.
func ParsePrefix6(s string) (Prefix6, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		a, aerr := ParseIPv6(s)
		if aerr != nil {
			return Prefix6{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
		}
		return Prefix6{Addr: a, Len: 128}, nil
	}
	if !p.Addr().Is6() || p.Addr().Is4In6() {
		return Prefix6{}, fmt.Errorf("%w: %q: not an IPv6 prefix", ErrBadPrefix, s)
	}
	addr, err := ParseIPv6(p.Addr().WithZone("").String())
	if err != nil {
		return Prefix6{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	return Prefix6{Addr: addr, Len: uint8(p.Bits())}, nil
}

// MustParsePrefix6 is like ParsePrefix6 but panics on malformed input.
func MustParsePrefix6(s string) Prefix6 {
	p, err := ParsePrefix6(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Masks returns the 128-bit network mask as two 64-bit words — the exported
// form generators use to draw addresses inside a prefix.
func (p Prefix6) Masks() (hi, lo uint64) { return p.masks() }

// masks returns the 128-bit network mask as two 64-bit words.
func (p Prefix6) masks() (hi, lo uint64) {
	switch {
	case p.Len == 0:
		return 0, 0
	case p.Len <= 64:
		return ^uint64(0) << (64 - uint(p.Len)), 0
	case p.Len >= 128:
		return ^uint64(0), ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0) << (128 - uint(p.Len))
	}
}

// Canonical returns the prefix with host bits cleared. Two prefixes matching
// the same address set have equal canonical forms.
func (p Prefix6) Canonical() Prefix6 {
	hi, lo := p.masks()
	return Prefix6{Addr: IPv6{Hi: p.Addr.Hi & hi, Lo: p.Addr.Lo & lo}, Len: p.Len}
}

// Matches reports whether the address falls inside the prefix.
func (p Prefix6) Matches(a IPv6) bool {
	hi, lo := p.masks()
	return a.Hi&hi == p.Addr.Hi&hi && a.Lo&lo == p.Addr.Lo&lo
}

// IsWildcard reports whether the prefix matches every address.
func (p Prefix6) IsWildcard() bool { return p.Len == 0 }

// String renders the prefix as "addr/len".
func (p Prefix6) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Len) }

// MaxVLAN is the largest valid 802.1Q VLAN identifier (the tag field is 12
// bits wide).
const MaxVLAN uint16 = 4095

// VLANMatch matches the 12-bit 802.1Q VLAN tag with a value/mask pair.
// Mask == 0 is the wildcard (the zero value matches every header, tagged or
// not), Mask == 0x0FFF the exact match.
type VLANMatch struct {
	Value uint16
	Mask  uint16
}

// WildcardVLAN matches every VLAN tag.
func WildcardVLAN() VLANMatch { return VLANMatch{} }

// ExactVLAN matches exactly the given VLAN tag.
func ExactVLAN(v uint16) VLANMatch { return VLANMatch{Value: v, Mask: 0x0FFF} }

// Matches reports whether the tag satisfies the match.
func (m VLANMatch) Matches(v uint16) bool { return v&m.Mask == m.Value&m.Mask }

// IsWildcard reports whether the match accepts every tag.
func (m VLANMatch) IsWildcard() bool { return m.Mask == 0 }

// String renders the match as "0xVVV/0xMMM".
func (m VLANMatch) String() string { return fmt.Sprintf("0x%03X/0x%03X", m.Value, m.Mask) }

// TCP flag bits, in header bit order.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// TCPFlagMatch matches the TCP flags byte with a value/mask pair: the header
// bits selected by Mask must equal the corresponding bits of Value. Mask == 0
// is the wildcard (the zero value), so non-TCP traffic and legacy rules are
// unaffected. {Value: TCPSyn, Mask: TCPSyn | TCPAck} matches SYNs that are
// not SYN-ACKs.
type TCPFlagMatch struct {
	Value uint8
	Mask  uint8
}

// WildcardTCPFlags matches every flag combination.
func WildcardTCPFlags() TCPFlagMatch { return TCPFlagMatch{} }

// Matches reports whether the flags byte satisfies the match.
func (m TCPFlagMatch) Matches(f uint8) bool { return f&m.Mask == m.Value&m.Mask }

// IsWildcard reports whether the match accepts every flags byte.
func (m TCPFlagMatch) IsWildcard() bool { return m.Mask == 0 }

// String renders the match as "0xVV/0xMM".
func (m TCPFlagMatch) String() string { return fmt.Sprintf("0x%02X/0x%02X", m.Value, m.Mask) }
