package fivetuple

import (
	"strings"
	"testing"
)

// TestParseClassBenchRuleEdgeCases locks in the parser behaviour the
// differential fuzzer leans on: empty (inverted) ranges are rejected,
// max-port boundaries parse exactly, and malformed lines fail loudly.
func TestParseClassBenchRuleEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		wantErr bool
		check   func(t *testing.T, r Rule)
	}{
		{
			name: "max-port-boundary",
			line: "@0.0.0.0/0\t0.0.0.0/0\t65535 : 65535\t0 : 65535\t0x06/0xFF",
			check: func(t *testing.T, r Rule) {
				if r.SrcPort != (PortRange{Lo: 65535, Hi: 65535}) {
					t.Errorf("SrcPort = %v, want exactly 65535", r.SrcPort)
				}
				if !r.DstPort.IsWildcard() {
					t.Errorf("DstPort = %v, want the full wildcard", r.DstPort)
				}
			},
		},
		{
			name: "zero-port-boundary",
			line: "@10.0.0.0/8\t192.168.0.0/16\t0 : 0\t80 : 80\t0x11/0xFF",
			check: func(t *testing.T, r Rule) {
				if !r.SrcPort.IsExact() || r.SrcPort.Lo != 0 {
					t.Errorf("SrcPort = %v, want exactly 0", r.SrcPort)
				}
			},
		},
		{
			name:    "empty-range-rejected",
			line:    "@0.0.0.0/0\t0.0.0.0/0\t5 : 3\t0 : 65535\t0x06/0xFF",
			wantErr: true,
		},
		{
			name:    "port-above-max-rejected",
			line:    "@0.0.0.0/0\t0.0.0.0/0\t0 : 65536\t0 : 65535\t0x06/0xFF",
			wantErr: true,
		},
		{
			name:    "prefix-length-above-32-rejected",
			line:    "@10.0.0.0/33\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x06/0xFF",
			wantErr: true,
		},
		{
			name:    "missing-fields-rejected",
			line:    "@10.0.0.0/8\t192.168.0.0/16\t0 : 65535",
			wantErr: true,
		},
		{
			name:    "no-at-prefix-rejected",
			line:    "10.0.0.0/8\t192.168.0.0/16\t0 : 65535\t0 : 65535\t0x06/0xFF",
			wantErr: true,
		},
		{
			name: "wildcard-protocol",
			line: "@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00",
			check: func(t *testing.T, r Rule) {
				if !r.Protocol.IsWildcard() {
					t.Errorf("Protocol = %v, want wildcard", r.Protocol)
				}
			},
		},
		{
			name: "extra-flag-columns-ignored",
			line: "@1.2.3.4/32\t5.6.7.8/32\t80 : 80\t443 : 443\t0x06/0xFF\t0x1000/0x1000",
			check: func(t *testing.T, r Rule) {
				if r.SrcPrefix.Len != 32 || r.DstPort.Lo != 443 {
					t.Errorf("rule = %s, extra columns corrupted the parse", r)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := ParseClassBenchRule(tc.line)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseClassBenchRule(%q) accepted a malformed line: %+v", tc.line, r)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseClassBenchRule(%q): %v", tc.line, err)
			}
			if tc.check != nil {
				tc.check(t, r)
			}
		})
	}
}

// TestParseClassBenchDuplicatePriorities locks in the duplicate-rule
// convention: identical lines are all kept and renumbered by position, and
// classification returns the first (highest-priority) copy.
func TestParseClassBenchDuplicatePriorities(t *testing.T) {
	const line = "@10.0.0.0/8\t0.0.0.0/0\t0 : 65535\t80 : 80\t0x06/0xFF\n"
	rs, err := ParseClassBench(strings.NewReader(line + line + line))
	if err != nil {
		t.Fatalf("ParseClassBench: %v", err)
	}
	if rs.Len() != 3 {
		t.Fatalf("parsed %d rules, want all 3 duplicates kept", rs.Len())
	}
	for i := 0; i < rs.Len(); i++ {
		if rs.Rule(i).Priority != i {
			t.Errorf("rule %d has priority %d, want position-assigned %d", i, rs.Rule(i).Priority, i)
		}
	}
	h := Header{SrcIP: MustParseIPv4("10.9.9.9"), DstPort: 80, Protocol: ProtoTCP}
	if idx, ok := rs.Classify(h); !ok || idx != 0 {
		t.Errorf("Classify = (%d, %v), want the first duplicate (0, true)", idx, ok)
	}
}

// TestParseTraceValidation locks in the range checking that replaced silent
// truncation: out-of-range ports, protocols and addresses are errors.
func TestParseTraceValidation(t *testing.T) {
	good := "167772161 3232235521 1234 80 6\n# comment\n\n167772162 3232235522 65535 0 255 17\n"
	headers, err := ParseTrace(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseTrace(good): %v", err)
	}
	if len(headers) != 2 {
		t.Fatalf("parsed %d headers, want 2", len(headers))
	}
	if headers[0].SrcIP != MustParseIPv4("10.0.0.1") || headers[0].DstPort != 80 {
		t.Errorf("header 0 = %+v, want 10.0.0.1 -> :80", headers[0])
	}
	if headers[1].SrcPort != 65535 || headers[1].Protocol != 255 {
		t.Errorf("header 1 = %+v, want the max-port/max-protocol boundary", headers[1])
	}

	bad := []struct{ name, line string }{
		{"port-above-max", "1 2 65536 80 6"},
		{"protocol-above-max", "1 2 3 4 256"},
		{"address-above-max", "4294967296 2 3 4 6"},
		{"uint64-overflow", "99999999999999999999999999 2 3 4 6"},
		{"negative", "-1 2 3 4 6"},
		{"hex", "0x10 2 3 4 6"},
		{"short-line", "1 2 3 4"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if hs, err := ParseTrace(strings.NewReader(tc.line)); err == nil {
				t.Errorf("ParseTrace(%q) accepted a malformed line: %+v", tc.line, hs)
			}
		})
	}
}

// TestClassBenchBoundaryRoundTrip writes a parsed set back out and
// re-parses it, covering the boundary values end to end.
func TestClassBenchBoundaryRoundTrip(t *testing.T) {
	in := "@255.255.255.255/32\t0.0.0.0/0\t65535 : 65535\t0 : 0\t0xFF/0xFF\n" +
		"@0.0.0.0/0\t128.0.0.0/1\t0 : 65535\t1024 : 65535\t0x00/0x00\n"
	rs, err := ParseClassBench(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseClassBench: %v", err)
	}
	var out strings.Builder
	if err := rs.WriteClassBench(&out); err != nil {
		t.Fatalf("WriteClassBench: %v", err)
	}
	rs2, err := ParseClassBench(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("re-parsing emitted set: %v", err)
	}
	if rs2.Len() != rs.Len() {
		t.Fatalf("round trip changed the rule count: %d -> %d", rs.Len(), rs2.Len())
	}
	for i := 0; i < rs.Len(); i++ {
		a, b := rs.Rule(i), rs2.Rule(i)
		if a.SrcPrefix != b.SrcPrefix || a.DstPrefix != b.DstPrefix ||
			a.SrcPort != b.SrcPort || a.DstPort != b.DstPort || a.Protocol != b.Protocol {
			t.Errorf("rule %d changed in the round trip: %s -> %s", i, a, b)
		}
	}
}
