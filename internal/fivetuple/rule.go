package fivetuple

import (
	"fmt"
	"strings"
)

// Action is the forwarding action attached to a rule, mirroring the OpenFlow
// actions mentioned by the paper: forwarding, modification and redirection to
// a group table.
type Action uint8

// Supported rule actions.
const (
	// ActionForward forwards the packet on the port carried by ActionArg.
	ActionForward Action = iota + 1
	// ActionDrop silently discards the packet.
	ActionDrop
	// ActionModify rewrites a header field before forwarding.
	ActionModify
	// ActionGroup redirects the packet to a group table entry.
	ActionGroup
	// ActionController punts the packet to the SDN controller.
	ActionController
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionForward:
		return "forward"
	case ActionDrop:
		return "drop"
	case ActionModify:
		return "modify"
	case ActionGroup:
		return "group"
	case ActionController:
		return "controller"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// ParseAction parses an action name produced by Action.String.
func ParseAction(s string) (Action, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "forward":
		return ActionForward, nil
	case "drop":
		return ActionDrop, nil
	case "modify":
		return ActionModify, nil
	case "group":
		return ActionGroup, nil
	case "controller":
		return ActionController, nil
	default:
		return 0, fmt.Errorf("fivetuple: unknown action %q", s)
	}
}

// Rule is a single 5-tuple classification rule.
//
// Priority follows filter-set convention: priority 0 is the highest priority
// (the first rule in the file). The classifier must return the matching rule
// with the smallest Priority value — the Highest Priority Matching Rule.
type Rule struct {
	SrcPrefix Prefix
	DstPrefix Prefix
	SrcPort   PortRange
	DstPort   PortRange
	Protocol  ProtocolMatch

	// Src6 and Dst6 are optional IPv6 prefix matches. A rule with a
	// non-wildcard IPv6 prefix only matches FamilyIPv6 headers; a rule with
	// a non-wildcard IPv4 prefix only matches FamilyIPv4 headers. A rule
	// wildcard in both families matches headers of either family.
	Src6 Prefix6
	Dst6 Prefix6
	// VLAN optionally matches the 802.1Q tag; the zero value is the
	// wildcard.
	VLAN VLANMatch
	// TCPFlags optionally matches the TCP flags byte; the zero value is the
	// wildcard.
	TCPFlags TCPFlagMatch

	// Priority is the rule's position in the filter set; smaller is higher
	// priority.
	Priority int
	// Action is the forwarding action applied when this rule is the HPMR.
	Action Action
	// ActionArg carries the action parameter (egress port, group id, ...).
	ActionArg uint32
	// NonTerminating marks a rule that contributes its action to the
	// ordered multi-action result (LookupAll) without stopping collection —
	// mirror/count chains stack on top of a later terminating verdict. The
	// first-match verdict (Lookup) still reports the HPMR regardless.
	NonTerminating bool
}

// Matches reports whether the header satisfies every match dimension of the
// rule, including the optional IPv6/VLAN/TCP-flag extensions.
func (r Rule) Matches(h Header) bool {
	if h.Family == FamilyIPv6 {
		if !r.SrcPrefix.IsWildcard() || !r.DstPrefix.IsWildcard() {
			return false
		}
		if !r.Src6.Matches(h.SrcIP6) || !r.Dst6.Matches(h.DstIP6) {
			return false
		}
	} else {
		if !r.Src6.IsWildcard() || !r.Dst6.IsWildcard() {
			return false
		}
		if !r.SrcPrefix.Matches(h.SrcIP) || !r.DstPrefix.Matches(h.DstIP) {
			return false
		}
	}
	return r.SrcPort.Matches(h.SrcPort) &&
		r.DstPort.Matches(h.DstPort) &&
		r.Protocol.Matches(h.Protocol) &&
		r.VLAN.Matches(h.VLAN) &&
		r.TCPFlags.Matches(h.TCPFlags)
}

// SameMatch reports whether two rules match exactly the same set of headers,
// comparing every dimension in canonical form. Priority, action and
// termination semantics are not part of the comparison: this is the identity
// used by the update plane to locate an installed rule.
func (r Rule) SameMatch(o Rule) bool {
	return r.SrcPrefix.Canonical() == o.SrcPrefix.Canonical() &&
		r.DstPrefix.Canonical() == o.DstPrefix.Canonical() &&
		r.SrcPort == o.SrcPort &&
		r.DstPort == o.DstPort &&
		r.Protocol == o.Protocol &&
		r.Src6.Canonical() == o.Src6.Canonical() &&
		r.Dst6.Canonical() == o.Dst6.Canonical() &&
		r.VLAN == o.VLAN &&
		r.TCPFlags == o.TCPFlags
}

// Wildcard returns a rule matching every packet, with the given priority and
// action. Filter sets conventionally end with such a default rule.
func Wildcard(priority int, action Action) Rule {
	return Rule{
		SrcPort:  WildcardPortRange(),
		DstPort:  WildcardPortRange(),
		Priority: priority,
		Action:   action,
	}
}

// String renders the rule in ClassBench syntax (without the leading '@').
// Extension dimensions, when present, are appended as "key=value" suffixes so
// classic five-tuple rules keep their exact legacy rendering.
func (r Rule) String() string {
	s := fmt.Sprintf("%s %s %s %s %s", r.SrcPrefix, r.DstPrefix, r.SrcPort, r.DstPort, r.Protocol)
	if !r.Src6.IsWildcard() || !r.Dst6.IsWildcard() {
		s += fmt.Sprintf(" src6=%s dst6=%s", r.Src6, r.Dst6)
	}
	if !r.VLAN.IsWildcard() {
		s += fmt.Sprintf(" vlan=%s", r.VLAN)
	}
	if !r.TCPFlags.IsWildcard() {
		s += fmt.Sprintf(" flags=%s", r.TCPFlags)
	}
	if r.NonTerminating {
		s += " non-terminating"
	}
	return s
}

// FieldKey returns a canonical string key identifying the rule's match value
// in the given dimension. Two rules share a key exactly when their field
// matches are equivalent, which is the property the label method relies on to
// count and deduplicate unique rule fields.
func (r Rule) FieldKey(f Field) string {
	switch f {
	case FieldSrcIP:
		return r.SrcPrefix.Canonical().String()
	case FieldDstIP:
		return r.DstPrefix.Canonical().String()
	case FieldSrcPort:
		return r.SrcPort.String()
	case FieldDstPort:
		return r.DstPort.String()
	case FieldProtocol:
		if r.Protocol.IsWildcard() {
			return "*"
		}
		return r.Protocol.String()
	default:
		return ""
	}
}

// CoverageWeight returns a coarse measure of how much of the header space the
// rule covers in the given dimension (0 = exact, larger = wider). HyperCuts
// and EffiCuts style heuristics use this to pick cut dimensions.
func (r Rule) CoverageWeight(f Field) float64 {
	switch f {
	case FieldSrcIP:
		return float64(uint64(1) << (32 - uint(r.SrcPrefix.Len)))
	case FieldDstIP:
		return float64(uint64(1) << (32 - uint(r.DstPrefix.Len)))
	case FieldSrcPort:
		return float64(r.SrcPort.Width())
	case FieldDstPort:
		return float64(r.DstPort.Width())
	case FieldProtocol:
		if r.Protocol.IsWildcard() {
			return 256
		}
		return 1
	default:
		return 0
	}
}
