package fivetuple

import "strings"

// DimSet is a bitmask of extension dimensions beyond the classic IPv4
// five-tuple. Engines declare the set they can serve in their registry
// definition; every rule reports the set it requires via Rule.Dims. The core
// refuses to install a rule whose required dimensions exceed what the active
// engine declared, so engines never silently misclassify — they either serve
// a dimension or honestly decline it.
type DimSet uint8

// Extension dimensions.
const (
	// DimIPv6 marks 128-bit IPv6 source/destination prefix matching.
	DimIPv6 DimSet = 1 << iota
	// DimVLAN marks 802.1Q VLAN tag matching.
	DimVLAN
	// DimTCPFlags marks TCP flags value/mask matching.
	DimTCPFlags
	// DimMaskedProto marks partial (non-wildcard, non-exact) protocol
	// masks, which range- and lut-based engines cannot represent.
	DimMaskedProto
	// DimMultiAction marks non-terminating rules, which require the engine
	// to enumerate all matches (LookupPacketAll) rather than stop at the
	// first.
	DimMultiAction
)

// AllDims is the set of every extension dimension.
const AllDims = DimIPv6 | DimVLAN | DimTCPFlags | DimMaskedProto | DimMultiAction

// Covers reports whether every dimension in need is present in d.
func (d DimSet) Covers(need DimSet) bool { return need&^d == 0 }

// Has reports whether the dimension bit is set.
func (d DimSet) Has(bit DimSet) bool { return d&bit != 0 }

// String renders the set as a "+"-joined list of dimension names, or "none".
func (d DimSet) String() string {
	if d == 0 {
		return "none"
	}
	var parts []string
	for _, e := range []struct {
		bit  DimSet
		name string
	}{
		{DimIPv6, "ipv6"},
		{DimVLAN, "vlan"},
		{DimTCPFlags, "tcp-flags"},
		{DimMaskedProto, "masked-proto"},
		{DimMultiAction, "multi-action"},
	} {
		if d.Has(e.bit) {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "+")
}

// Dims returns the extension dimensions this rule requires from the engine
// serving it. A classic IPv4 first-match five-tuple rule returns 0.
func (r Rule) Dims() DimSet {
	var d DimSet
	if !r.Src6.IsWildcard() || !r.Dst6.IsWildcard() {
		d |= DimIPv6
	}
	if !r.VLAN.IsWildcard() {
		d |= DimVLAN
	}
	if !r.TCPFlags.IsWildcard() {
		d |= DimTCPFlags
	}
	if m := r.Protocol.Mask; m != 0x00 && m != 0xFF {
		d |= DimMaskedProto
	}
	if r.NonTerminating {
		d |= DimMultiAction
	}
	return d
}

// IsExtended reports whether the rule requires any extension dimension.
func (r Rule) IsExtended() bool { return r.Dims() != 0 }

// RequiredDims returns the union of extension dimensions required by the
// rules.
func RequiredDims(rules []Rule) DimSet {
	var d DimSet
	for _, r := range rules {
		d |= r.Dims()
	}
	return d
}
