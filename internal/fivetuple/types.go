// Package fivetuple defines the packet-header and classification-rule model
// used throughout the repository.
//
// The model follows the 5-tuple convention used by the paper: source and
// destination IPv4 prefixes, source and destination transport-port ranges and
// an IP protocol match. Rules are ordered by priority (the rule listed first
// in a filter set has the highest priority) and the classification result is
// always the Highest Priority Matching Rule (HPMR).
//
// The package also implements the ClassBench text format ("@src dst sp : sp
// dp : dp proto/mask") so that publicly available filter sets can be loaded
// directly, and a linear-search reference classifier that serves as the
// ground truth for every lookup engine in this repository.
package fivetuple

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// MaxPort is the largest transport-layer port value.
const MaxPort uint16 = 65535

// ParseIPv4 parses a dotted-quad IPv4 address such as "192.168.0.1".
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("fivetuple: invalid IPv4 address %q", s)
	}
	var addr uint32
	for _, part := range parts {
		octet, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("fivetuple: invalid IPv4 octet %q in %q: %w", part, s, err)
		}
		addr = addr<<8 | uint32(octet)
	}
	return IPv4(addr), nil
}

// MustParseIPv4 is like ParseIPv4 but panics on malformed input. It is
// intended for tests and package-level examples with literal addresses.
func MustParseIPv4(s string) IPv4 {
	addr, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return addr
}

// String renders the address in dotted-quad notation.
func (a IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// High16 returns the most significant 16 bits of the address. The paper's
// architecture splits every IP field into two 16-bit segments, each served by
// its own lookup engine.
func (a IPv4) High16() uint16 { return uint16(a >> 16) }

// Low16 returns the least significant 16 bits of the address.
func (a IPv4) Low16() uint16 { return uint16(a) }

// Prefix is an IPv4 prefix (address plus prefix length), e.g. 10.0.0.0/8.
type Prefix struct {
	// Addr is the prefix network address. Bits beyond Len are ignored by
	// Matches but preserved verbatim for round-tripping filter files.
	Addr IPv4
	// Len is the prefix length in bits, 0..32. Len == 0 is the wildcard.
	Len uint8
}

// ErrBadPrefix reports a malformed prefix string.
var ErrBadPrefix = errors.New("fivetuple: malformed prefix")

// ParsePrefix parses "a.b.c.d/len". A bare address is treated as /32.
func ParsePrefix(s string) (Prefix, error) {
	addrPart := s
	lenPart := "32"
	if idx := strings.IndexByte(s, '/'); idx >= 0 {
		addrPart, lenPart = s[:idx], s[idx+1:]
	}
	addr, err := ParseIPv4(addrPart)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q: %v", ErrBadPrefix, s, err)
	}
	length, err := strconv.ParseUint(lenPart, 10, 8)
	if err != nil || length > 32 {
		return Prefix{}, fmt.Errorf("%w: %q: bad length", ErrBadPrefix, s)
	}
	return Prefix{Addr: addr, Len: uint8(length)}, nil
}

// MustParsePrefix is like ParsePrefix but panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask corresponding to the prefix length.
func (p Prefix) Mask() IPv4 {
	if p.Len == 0 {
		return 0
	}
	return IPv4(^uint32(0) << (32 - uint32(p.Len)))
}

// Canonical returns the prefix with host bits cleared. Two prefixes that
// match the same set of addresses have equal canonical forms.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & p.Mask(), Len: p.Len}
}

// Matches reports whether the address falls inside the prefix.
func (p Prefix) Matches(a IPv4) bool {
	return (a & p.Mask()) == (p.Addr & p.Mask())
}

// IsWildcard reports whether the prefix matches every address.
func (p Prefix) IsWildcard() bool { return p.Len == 0 }

// Contains reports whether every address matched by q is also matched by p.
func (p Prefix) Contains(q Prefix) bool {
	if q.Len < p.Len {
		return false
	}
	return p.Matches(q.Addr & q.Mask())
}

// Overlaps reports whether p and q match at least one common address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q) || q.Contains(p)
}

// String renders the prefix as "a.b.c.d/len".
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// HighSegment returns the prefix restricted to the high 16-bit segment of the
// address, expressed as a 16-bit value and a segment prefix length in 0..16.
// The architecture stores one trie per 16-bit segment, so a /24 prefix maps
// to a fully specified high segment (/16) and an 8-bit low segment.
func (p Prefix) HighSegment() (value uint16, bits uint8) {
	seg := p.Canonical()
	value = seg.Addr.High16()
	if seg.Len >= 16 {
		return value, 16
	}
	return value, seg.Len
}

// LowSegment returns the prefix restricted to the low 16-bit segment of the
// address. If the prefix is shorter than 16 bits the low segment is a full
// wildcard (bits == 0).
func (p Prefix) LowSegment() (value uint16, bits uint8) {
	seg := p.Canonical()
	value = seg.Addr.Low16()
	if seg.Len <= 16 {
		return value, 0
	}
	return value, seg.Len - 16
}

// PortRange is an inclusive range of transport-layer ports [Lo, Hi].
type PortRange struct {
	Lo uint16
	Hi uint16
}

// ErrBadPortRange reports a malformed port-range string.
var ErrBadPortRange = errors.New("fivetuple: malformed port range")

// ParsePortRange parses the ClassBench "lo : hi" syntax. Surrounding spaces
// are ignored, and a single value "p" is treated as the exact range [p, p].
func ParsePortRange(s string) (PortRange, error) {
	s = strings.TrimSpace(s)
	loPart := s
	hiPart := s
	if idx := strings.IndexByte(s, ':'); idx >= 0 {
		loPart, hiPart = strings.TrimSpace(s[:idx]), strings.TrimSpace(s[idx+1:])
	}
	lo, err := strconv.ParseUint(loPart, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("%w: %q", ErrBadPortRange, s)
	}
	hi, err := strconv.ParseUint(hiPart, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("%w: %q", ErrBadPortRange, s)
	}
	if lo > hi {
		return PortRange{}, fmt.Errorf("%w: %q: low bound exceeds high bound", ErrBadPortRange, s)
	}
	return PortRange{Lo: uint16(lo), Hi: uint16(hi)}, nil
}

// WildcardPortRange matches every port.
func WildcardPortRange() PortRange { return PortRange{Lo: 0, Hi: MaxPort} }

// ExactPort returns the range matching exactly p.
func ExactPort(p uint16) PortRange { return PortRange{Lo: p, Hi: p} }

// Matches reports whether the port falls inside the range.
func (r PortRange) Matches(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// IsExact reports whether the range matches a single port.
func (r PortRange) IsExact() bool { return r.Lo == r.Hi }

// IsWildcard reports whether the range matches every port.
func (r PortRange) IsWildcard() bool { return r.Lo == 0 && r.Hi == MaxPort }

// Width returns the number of ports matched by the range.
func (r PortRange) Width() uint32 { return uint32(r.Hi) - uint32(r.Lo) + 1 }

// Contains reports whether every port matched by q is also matched by r.
func (r PortRange) Contains(q PortRange) bool { return r.Lo <= q.Lo && q.Hi <= r.Hi }

// Overlaps reports whether r and q match at least one common port.
func (r PortRange) Overlaps(q PortRange) bool { return r.Lo <= q.Hi && q.Lo <= r.Hi }

// String renders the range in ClassBench "lo : hi" syntax.
func (r PortRange) String() string { return fmt.Sprintf("%d : %d", r.Lo, r.Hi) }

// ProtocolMatch matches the IP protocol field using a value/mask pair, the
// convention used by ClassBench filter sets (0x06/0xFF for TCP, 0x00/0x00 for
// the wildcard).
type ProtocolMatch struct {
	Value uint8
	Mask  uint8
}

// ErrBadProtocol reports a malformed protocol match string.
var ErrBadProtocol = errors.New("fivetuple: malformed protocol match")

// ParseProtocolMatch parses the ClassBench "0xVV/0xMM" syntax. A bare value
// is treated as an exact match.
func ParseProtocolMatch(s string) (ProtocolMatch, error) {
	s = strings.TrimSpace(s)
	valPart := s
	maskPart := "0xFF"
	if idx := strings.IndexByte(s, '/'); idx >= 0 {
		valPart, maskPart = s[:idx], s[idx+1:]
	}
	val, err := parseUint8(valPart)
	if err != nil {
		return ProtocolMatch{}, fmt.Errorf("%w: %q", ErrBadProtocol, s)
	}
	mask, err := parseUint8(maskPart)
	if err != nil {
		return ProtocolMatch{}, fmt.Errorf("%w: %q", ErrBadProtocol, s)
	}
	return ProtocolMatch{Value: val, Mask: mask}, nil
}

func parseUint8(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 8)
	if err != nil {
		return 0, err
	}
	return uint8(v), nil
}

// WildcardProtocol matches every protocol value.
func WildcardProtocol() ProtocolMatch { return ProtocolMatch{} }

// ExactProtocol matches exactly the given protocol value.
func ExactProtocol(v uint8) ProtocolMatch { return ProtocolMatch{Value: v, Mask: 0xFF} }

// Matches reports whether the protocol value satisfies the match.
func (m ProtocolMatch) Matches(p uint8) bool { return p&m.Mask == m.Value&m.Mask }

// IsWildcard reports whether the match accepts every protocol.
func (m ProtocolMatch) IsWildcard() bool { return m.Mask == 0 }

// IsExact reports whether the match accepts a single protocol value.
func (m ProtocolMatch) IsExact() bool { return m.Mask == 0xFF }

// String renders the match in ClassBench "0xVV/0xMM" syntax.
func (m ProtocolMatch) String() string { return fmt.Sprintf("0x%02X/0x%02X", m.Value, m.Mask) }

// Well-known IP protocol numbers used by the generators and examples.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoGRE  uint8 = 47
	ProtoESP  uint8 = 50
)

// Header is the tuple extracted from a packet header. It is the unit of work
// handed to every classifier in this repository. The zero value of the
// extension dimensions (Family == FamilyIPv4, VLAN == 0, TCPFlags == 0,
// all-zero IPv6 addresses) describes an untagged IPv4 packet, so legacy
// five-tuple callers are unaffected.
//
// Header is a comparable struct: the microflow cache and test harnesses rely
// on struct equality covering every dimension. When adding a field here, also
// extend cache.hashHeader and shard.Partitioner.Steer — the cache package has
// a reflection-based regression test that fails if the hash misses a field.
type Header struct {
	SrcIP    IPv4
	DstIP    IPv4
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8

	// Family selects which address fields are meaningful. FamilyIPv4 (the
	// zero value) uses SrcIP/DstIP; FamilyIPv6 uses SrcIP6/DstIP6.
	Family Family
	// VLAN is the 12-bit 802.1Q tag; 0 means untagged.
	VLAN uint16
	// TCPFlags is the TCP flags byte; 0 for non-TCP traffic.
	TCPFlags uint8
	// SrcIP6 and DstIP6 carry the 128-bit addresses when Family ==
	// FamilyIPv6.
	SrcIP6 IPv6
	DstIP6 IPv6
}

// String renders the header in a compact human-readable form.
func (h Header) String() string {
	if h.Family == FamilyIPv6 {
		return fmt.Sprintf("%s:%d -> %s:%d proto %d vlan %d flags 0x%02X",
			h.SrcIP6, h.SrcPort, h.DstIP6, h.DstPort, h.Protocol, h.VLAN, h.TCPFlags)
	}
	if h.VLAN != 0 || h.TCPFlags != 0 {
		return fmt.Sprintf("%s:%d -> %s:%d proto %d vlan %d flags 0x%02X",
			h.SrcIP, h.SrcPort, h.DstIP, h.DstPort, h.Protocol, h.VLAN, h.TCPFlags)
	}
	return fmt.Sprintf("%s:%d -> %s:%d proto %d", h.SrcIP, h.SrcPort, h.DstIP, h.DstPort, h.Protocol)
}

// Field identifies one of the five header dimensions.
type Field uint8

// The five classification dimensions, in the order used by the architecture
// when packing labels into the combination key.
const (
	FieldSrcIP Field = iota + 1
	FieldDstIP
	FieldSrcPort
	FieldDstPort
	FieldProtocol
)

// NumFields is the number of classification dimensions.
const NumFields = 5

// Fields lists all dimensions in canonical order.
func Fields() []Field { return allFields[:] }

// allFields backs Fields so the hot paths iterating the dimensions do not
// allocate a fresh slice per packet. Callers must not mutate the result.
var allFields = [...]Field{FieldSrcIP, FieldDstIP, FieldSrcPort, FieldDstPort, FieldProtocol}

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldSrcIP:
		return "srcIP"
	case FieldDstIP:
		return "dstIP"
	case FieldSrcPort:
		return "srcPort"
	case FieldDstPort:
		return "dstPort"
	case FieldProtocol:
		return "protocol"
	default:
		return fmt.Sprintf("Field(%d)", uint8(f))
	}
}
