package fivetuple

import (
	"fmt"
	"sort"
)

// RuleSet is an ordered collection of classification rules: a filter set in
// ClassBench terminology, a flow table in OpenFlow terminology.
type RuleSet struct {
	// Name identifies the filter set, e.g. "acl1-10k".
	Name string

	rules []Rule
}

// NewRuleSet builds a rule set from the given rules. Rule priorities are
// rewritten to match their position so that the set is internally consistent.
func NewRuleSet(name string, rules []Rule) *RuleSet {
	rs := &RuleSet{Name: name, rules: make([]Rule, len(rules))}
	copy(rs.rules, rules)
	for i := range rs.rules {
		rs.rules[i].Priority = i
	}
	return rs
}

// Len returns the number of rules in the set.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Rules returns a copy of the rules in priority order.
func (rs *RuleSet) Rules() []Rule {
	out := make([]Rule, len(rs.rules))
	copy(out, rs.rules)
	return out
}

// Rule returns the rule at the given priority position.
func (rs *RuleSet) Rule(i int) Rule { return rs.rules[i] }

// Append adds a rule at the lowest priority position and returns its index.
func (rs *RuleSet) Append(r Rule) int {
	r.Priority = len(rs.rules)
	rs.rules = append(rs.rules, r)
	return r.Priority
}

// Insert places the rule at priority position i (0 = highest priority),
// shifting lower-priority rules down. It panics if i is out of range.
func (rs *RuleSet) Insert(i int, r Rule) {
	if i < 0 || i > len(rs.rules) {
		panic(fmt.Sprintf("fivetuple: insert position %d out of range [0,%d]", i, len(rs.rules)))
	}
	rs.rules = append(rs.rules, Rule{})
	copy(rs.rules[i+1:], rs.rules[i:])
	rs.rules[i] = r
	rs.renumber()
}

// Remove deletes the rule at priority position i. It panics if i is out of
// range.
func (rs *RuleSet) Remove(i int) {
	if i < 0 || i >= len(rs.rules) {
		panic(fmt.Sprintf("fivetuple: remove position %d out of range [0,%d)", i, len(rs.rules)))
	}
	rs.rules = append(rs.rules[:i], rs.rules[i+1:]...)
	rs.renumber()
}

func (rs *RuleSet) renumber() {
	for i := range rs.rules {
		rs.rules[i].Priority = i
	}
}

// Classify performs a priority-ordered linear search and returns the index of
// the Highest Priority Matching Rule. The second result is false when no rule
// matches. This is the reference (ground-truth) classifier that every lookup
// engine in the repository is validated against.
func (rs *RuleSet) Classify(h Header) (int, bool) {
	for i, r := range rs.rules {
		if r.Matches(h) {
			return i, true
		}
	}
	return 0, false
}

// MatchingRules returns the indices of all rules matching the header, in
// priority order. Label-based engines return the full matching set per field;
// this is the multi-field equivalent used in tests.
func (rs *RuleSet) MatchingRules(h Header) []int {
	var out []int
	for i, r := range rs.rules {
		if r.Matches(h) {
			out = append(out, i)
		}
	}
	return out
}

// ClassifyAll returns the indices of the matching rules that contribute to
// the multi-action verdict, in priority order: every matching non-terminating
// rule up to and including the first matching terminating rule. This is the
// reference semantics for Classifier.LookupAll — for a set without
// non-terminating rules it returns at most one index, the HPMR.
func (rs *RuleSet) ClassifyAll(h Header) []int {
	var out []int
	for i, r := range rs.rules {
		if !r.Matches(h) {
			continue
		}
		out = append(out, i)
		if !r.NonTerminating {
			break
		}
	}
	return out
}

// UniqueFieldValues returns the distinct field keys present in the set for
// the given dimension, in first-appearance (priority) order. The length of
// the result is the "number of unique rule fields" reported in Table II of
// the paper and determines the label-table sizes.
func (rs *RuleSet) UniqueFieldValues(f Field) []string {
	seen := make(map[string]struct{}, len(rs.rules))
	var out []string
	for _, r := range rs.rules {
		key := r.FieldKey(f)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, key)
	}
	return out
}

// UniqueFieldCount returns len(UniqueFieldValues(f)) without materialising
// the value list.
func (rs *RuleSet) UniqueFieldCount(f Field) int {
	seen := make(map[string]struct{}, len(rs.rules))
	for _, r := range rs.rules {
		seen[r.FieldKey(f)] = struct{}{}
	}
	return len(seen)
}

// FieldStatistics summarises the structure of one dimension of the rule set.
type FieldStatistics struct {
	Field        Field
	UniqueValues int
	Wildcards    int
	ExactMatches int
	// PrefixLengthHistogram counts rules per prefix length (IP fields only).
	PrefixLengthHistogram [33]int
	// RangeRules counts non-exact, non-wildcard port ranges (port fields only).
	RangeRules int
}

// Statistics computes per-field statistics for the whole rule set.
func (rs *RuleSet) Statistics() []FieldStatistics {
	stats := make([]FieldStatistics, 0, NumFields)
	for _, f := range Fields() {
		s := FieldStatistics{Field: f, UniqueValues: rs.UniqueFieldCount(f)}
		for _, r := range rs.rules {
			switch f {
			case FieldSrcIP, FieldDstIP:
				p := r.SrcPrefix
				if f == FieldDstIP {
					p = r.DstPrefix
				}
				s.PrefixLengthHistogram[p.Len]++
				if p.IsWildcard() {
					s.Wildcards++
				}
				if p.Len == 32 {
					s.ExactMatches++
				}
			case FieldSrcPort, FieldDstPort:
				pr := r.SrcPort
				if f == FieldDstPort {
					pr = r.DstPort
				}
				switch {
				case pr.IsWildcard():
					s.Wildcards++
				case pr.IsExact():
					s.ExactMatches++
				default:
					s.RangeRules++
				}
			case FieldProtocol:
				if r.Protocol.IsWildcard() {
					s.Wildcards++
				} else {
					s.ExactMatches++
				}
			}
		}
		stats = append(stats, s)
	}
	return stats
}

// OverlapDegree returns, for a sample of rule pairs, the fraction that
// overlap in every dimension. Decision-tree classifiers degrade as overlap
// grows; the statistic is used by the experiment harness to characterise the
// generated filter sets.
func (rs *RuleSet) OverlapDegree() float64 {
	n := len(rs.rules)
	if n < 2 {
		return 0
	}
	// Bound the O(n^2) scan for very large sets.
	const maxPairs = 200000
	pairs := 0
	overlapping := 0
	for i := 0; i < n && pairs < maxPairs; i++ {
		for j := i + 1; j < n && pairs < maxPairs; j++ {
			pairs++
			a, b := rs.rules[i], rs.rules[j]
			if a.SrcPrefix.Overlaps(b.SrcPrefix) &&
				a.DstPrefix.Overlaps(b.DstPrefix) &&
				a.SrcPort.Overlaps(b.SrcPort) &&
				a.DstPort.Overlaps(b.DstPort) &&
				(a.Protocol.IsWildcard() || b.Protocol.IsWildcard() || a.Protocol.Value == b.Protocol.Value) {
				overlapping++
			}
		}
	}
	return float64(overlapping) / float64(pairs)
}

// SortedPrefixLengths returns the distinct prefix lengths used by the given
// IP dimension in ascending order. Segment-trie and DCFL style engines build
// one search structure per distinct length.
func (rs *RuleSet) SortedPrefixLengths(f Field) []uint8 {
	if f != FieldSrcIP && f != FieldDstIP {
		return nil
	}
	seen := make(map[uint8]struct{})
	for _, r := range rs.rules {
		p := r.SrcPrefix
		if f == FieldDstIP {
			p = r.DstPrefix
		}
		seen[p.Len] = struct{}{}
	}
	out := make([]uint8, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
