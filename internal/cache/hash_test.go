package cache

import (
	"reflect"
	"strings"
	"testing"

	"sdnpc/internal/fivetuple"
)

// TestHashHeaderCoversEveryField pins the bug where hashHeader keyed only the
// 104 five-tuple bits and ignored the IPv6/VLAN/flag extensions: two headers
// differing only in an unhashed dimension landed in the same bucket on every
// shard, turning the cache into a pathological collision chain. The test
// walks fivetuple.Header by reflection — recursing into nested structs — and
// flips one bit of each leaf field in turn: every flip must change the hash.
// Adding a Header field without extending hashHeader fails this test.
func TestHashHeaderCoversEveryField(t *testing.T) {
	base := fivetuple.Header{
		SrcIP:    fivetuple.MustParseIPv4("10.1.2.3"),
		DstIP:    fivetuple.MustParseIPv4("192.168.9.17"),
		SrcPort:  4242,
		DstPort:  443,
		Protocol: 6,
		Family:   fivetuple.FamilyIPv4,
		VLAN:     100,
		TCPFlags: fivetuple.TCPSyn | fivetuple.TCPAck,
		SrcIP6:   fivetuple.MustParseIPv6("2001:db8::1"),
		DstIP6:   fivetuple.MustParseIPv6("2001:db8:ffff::2"),
	}
	const seed = 0x51cc5d1a_b00df00d
	want := hashHeader(base, seed)

	var paths []string
	var collect func(prefix string, tp reflect.Type)
	collect = func(prefix string, tp reflect.Type) {
		for i := 0; i < tp.NumField(); i++ {
			f := tp.Field(i)
			name := f.Name
			if prefix != "" {
				name = prefix + "." + f.Name
			}
			if f.Type.Kind() == reflect.Struct {
				collect(name, f.Type)
				continue
			}
			paths = append(paths, name)
		}
	}
	collect("", reflect.TypeOf(base))

	// Sanity floor: the header has at least the classic five-tuple plus the
	// family/VLAN/flag/IPv6 extensions. Fewer leaves means the walk broke.
	if len(paths) < 10 {
		t.Fatalf("reflection walk found only %d Header leaf fields: %v", len(paths), paths)
	}

	for _, path := range paths {
		hdr := base
		fv := reflect.ValueOf(&hdr).Elem()
		for _, seg := range strings.Split(path, ".") {
			fv = fv.FieldByName(seg)
		}
		switch fv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(fv.Uint() ^ 1)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() ^ 1)
		default:
			t.Fatalf("Header field %s has kind %s: teach this test's perturbation switch about it, and hashHeader about the field", path, fv.Kind())
		}
		if got := hashHeader(hdr, seed); got == want {
			t.Errorf("hashHeader ignores Header field %s: flipping it left the hash at %#x", path, want)
		}
	}
}

// TestHashHeaderSeedSensitivity keeps the per-shard seeding meaningful: the
// same header under different seeds must hash differently, or every shard's
// bucket choice degenerates to one global function.
func TestHashHeaderSeedSensitivity(t *testing.T) {
	h := fivetuple.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: 5}
	if hashHeader(h, 1) == hashHeader(h, 2) {
		t.Fatalf("hashHeader is seed-insensitive")
	}
}
