// Package cache implements the sharded exact-match microflow cache that sits
// in front of both classification engine tiers.
//
// Real SDN data planes short-circuit repeated five-tuples before any
// classification structure is walked — the microflow/megaflow split
// popularised by Open vSwitch. This package provides that front: a
// power-of-two sharded, set-associative table keyed by the exact packet
// five-tuple, with a per-shard seeded hash, fixed-capacity buckets evicted by
// a cheap per-bucket CLOCK sweep and atomic hit/miss/eviction counters.
//
// Coherence under concurrent rule churn comes from generations, not flushes.
// Every entry records the generation of the classifier snapshot whose lookup
// produced it, and Get only returns an entry whose generation equals the
// generation the caller is serving from. A clone-mutate-swap that publishes a
// new snapshot therefore invalidates the whole cache in O(1) — the new
// generation simply never matches old entries — without a stop-the-world
// flush and without writers ever touching the cache. Readers still holding
// the superseded snapshot keep hitting entries of that generation, which is
// exactly the old-or-new consistency the snapshot-swap serving path
// guarantees.
//
// The cache is value-generic so it stores the serving path's Result type
// without importing it (core depends on cache, not the reverse).
package cache

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"sdnpc/internal/fivetuple"
)

// ways is the bucket associativity: a full bucket evicts among this many
// candidate slots. Four ways keeps the CLOCK sweep inside one cache line's
// worth of metadata while tolerating modest hash skew.
const ways = 4

// shardSelectSeed seeds the hash that distributes headers across shards; the
// per-shard bucket hashes use seeds derived per shard so that a pathological
// five-tuple set cannot collide in every shard at once.
const shardSelectSeed = 0x9e3779b97f4a7c15

// entry is one cached five-tuple verdict.
type entry[V any] struct {
	key  fivetuple.Header
	gen  uint64
	val  V
	live bool
	// ref is the CLOCK reference bit: set on every hit, cleared as the
	// eviction hand sweeps past.
	ref bool
}

// shard is one independently locked slice of the cache.
type shard[V any] struct {
	mu   sync.Mutex
	seed uint64
	// entries holds bucketCount*ways slots; bucket b occupies
	// entries[b*ways : (b+1)*ways].
	entries []entry[V]
	// hands holds the per-bucket CLOCK hand.
	hands      []uint8
	bucketMask uint64
}

// Stats is a snapshot of the cache's atomic counters.
type Stats struct {
	// Hits is the number of lookups answered from the cache.
	Hits uint64
	// Misses is the number of lookups that fell through to the engines
	// (including stale-generation drops).
	Misses uint64
	// Evictions counts live entries displaced by the CLOCK sweep.
	Evictions uint64
	// StaleGenerations counts entries found for the right five-tuple but a
	// superseded snapshot generation; each was dropped and recounted as a
	// miss, never served.
	StaleGenerations uint64
}

// HitRate returns the fraction of lookups answered from the cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded exact-match microflow cache. All methods are safe for
// concurrent use; Get and Put on different shards never contend.
type Cache[V any] struct {
	shards    []shard[V]
	shardMask uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	stale     atomic.Uint64
}

// New builds a cache with the given shard count and total entry capacity.
// Both are rounded up: shards to a power of two (minimum 1; values <= 0
// select 8), capacity so every shard holds at least one ways-wide bucket and
// a power-of-two bucket count. Capacity() reports the resulting provisioned
// size.
func New[V any](shards, capacity int) *Cache[V] {
	if shards <= 0 {
		shards = 8
	}
	shards = nextPowerOfTwo(shards)
	if capacity < shards*ways {
		capacity = shards * ways
	}
	perShard := (capacity + shards - 1) / shards
	buckets := nextPowerOfTwo((perShard + ways - 1) / ways)

	c := &Cache[V]{
		shards:    make([]shard[V], shards),
		shardMask: uint64(shards - 1),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.seed = mix(shardSelectSeed + uint64(i)*0xbf58476d1ce4e5b9)
		s.entries = make([]entry[V], buckets*ways)
		s.hands = make([]uint8, buckets)
		s.bucketMask = uint64(buckets - 1)
	}
	return c
}

// Shards returns the (power-of-two) shard count.
func (c *Cache[V]) Shards() int { return len(c.shards) }

// Capacity returns the total number of provisioned entry slots.
func (c *Cache[V]) Capacity() int { return len(c.shards) * len(c.shards[0].entries) }

// FootprintBits reports the provisioned software footprint of the cache in
// bits: every entry slot at its in-memory struct size plus the per-bucket
// CLOCK hands. This is the honest number MemoryReport places beside the
// engine bits — provisioned, not merely occupied, because the slots are
// allocated up front.
func (c *Cache[V]) FootprintBits() int {
	var e entry[V]
	entryBytes := int(unsafe.Sizeof(e))
	total := 0
	for i := range c.shards {
		total += len(c.shards[i].entries)*entryBytes + len(c.shards[i].hands)
	}
	return total * 8
}

// Get returns the cached value for the header if it was filled under the
// same snapshot generation. An entry of an *older* generation belongs to a
// superseded snapshot: it is dropped (freeing the slot for the refill) and
// counted as a stale-generation miss, so a post-swap lookup can never be
// served a pre-swap verdict. An entry of a *newer* generation means the
// caller itself is still draining a superseded snapshot; the entry is left
// in place — evicting the fresh verdict on behalf of a reader that is about
// to finish would make hot entries ping-pong between generations for the
// whole drain.
func (c *Cache[V]) Get(gen uint64, h fivetuple.Header) (V, bool) {
	var zero V
	s := c.shardFor(h)
	base := s.bucketBase(h)
	s.mu.Lock()
	for i := 0; i < ways; i++ {
		e := &s.entries[base+i]
		if !e.live || e.key != h {
			continue
		}
		if e.gen == gen {
			e.ref = true
			val := e.val
			s.mu.Unlock()
			c.hits.Add(1)
			return val, true
		}
		if e.gen < gen {
			e.live = false
			e.val = zero
			s.mu.Unlock()
			c.stale.Add(1)
			c.misses.Add(1)
			return zero, false
		}
		break
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return zero, false
}

// Put stores the value computed for the header under the given snapshot
// generation, reusing the header's existing slot when present and otherwise
// filling a free slot or evicting inside the bucket with one CLOCK sweep.
func (c *Cache[V]) Put(gen uint64, h fivetuple.Header, v V) {
	s := c.shardFor(h)
	base := s.bucketBase(h)
	bucket := base / ways
	s.mu.Lock()
	free := -1
	for i := 0; i < ways; i++ {
		e := &s.entries[base+i]
		if e.live && e.key == h {
			if e.gen > gen {
				// A newer snapshot's verdict is already cached; a reader
				// still draining an older snapshot must not clobber it.
				s.mu.Unlock()
				return
			}
			e.gen, e.val, e.ref = gen, v, true
			s.mu.Unlock()
			return
		}
		if !e.live && free < 0 {
			free = i
		}
	}
	if free < 0 {
		// CLOCK: sweep the bucket from the hand, clearing reference bits
		// until an unreferenced victim is found. Bounded: after one full
		// sweep every bit is clear.
		hand := int(s.hands[bucket])
		for s.entries[base+hand].ref {
			s.entries[base+hand].ref = false
			hand = (hand + 1) % ways
		}
		free = hand
		s.hands[bucket] = uint8((hand + 1) % ways)
		c.evictions.Add(1)
	}
	s.entries[base+free] = entry[V]{key: h, gen: gen, val: v, live: true, ref: true}
	s.mu.Unlock()
}

// Stats returns a snapshot of the counters. Counters are read individually
// and atomically; the struct is not one consistent cut, which is inherent to
// concurrent collection.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Evictions:        c.evictions.Load(),
		StaleGenerations: c.stale.Load(),
	}
}

// ResetStats zeroes the counters without touching cached entries.
func (c *Cache[V]) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.stale.Store(0)
}

// shardFor selects the header's shard with the global shard-select hash.
func (c *Cache[V]) shardFor(h fivetuple.Header) *shard[V] {
	return &c.shards[hashHeader(h, shardSelectSeed)&c.shardMask]
}

// bucketBase returns the index of the first slot of the header's bucket,
// using this shard's private seed.
func (s *shard[V]) bucketBase(h fivetuple.Header) int {
	return int(hashHeader(h, s.seed)&s.bucketMask) * ways
}

// hashHeader hashes the full header with the given seed: every dimension —
// the 104 five-tuple bits, the family/VLAN/TCP-flag metadata word and the two
// 128-bit IPv6 addresses — is packed into words and chained through the
// splitmix64 finaliser, which is cheap and mixes every input bit into every
// output bit.
//
// Folding EVERY Header field in is a correctness requirement, not a quality
// tweak: the cache buckets by this hash and then compares keys with struct
// equality, so a missed field merely degrades bucketing — but the same
// function also steers the shard partitioner's tests and once hashed only the
// five-tuple, making two headers differing solely in an IPv6 address or VLAN
// tag collide pathologically. TestHashHeaderCoversEveryField walks the struct
// by reflection and fails when a newly added field is not mixed in here.
func hashHeader(h fivetuple.Header, seed uint64) uint64 {
	a := uint64(h.SrcIP)<<32 | uint64(h.DstIP)
	b := uint64(h.SrcPort)<<24 | uint64(h.DstPort)<<8 | uint64(h.Protocol)
	m := uint64(h.Family)<<24 | uint64(h.VLAN)<<8 | uint64(h.TCPFlags)
	x := mix(b ^ seed)
	x = mix(a ^ x)
	x = mix(m ^ x)
	x = mix(h.SrcIP6.Hi ^ x)
	x = mix(h.SrcIP6.Lo ^ x)
	x = mix(h.DstIP6.Hi ^ x)
	return mix(h.DstIP6.Lo ^ x)
}

// mix is the splitmix64 finaliser.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextPowerOfTwo rounds n up to the next power of two (minimum 1).
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
