package cache

import (
	"fmt"
	"sync"
	"testing"

	"sdnpc/internal/fivetuple"
)

func header(i int) fivetuple.Header {
	return fivetuple.Header{
		SrcIP:    fivetuple.IPv4(0x0a000000 + uint32(i)),
		DstIP:    fivetuple.IPv4(0xc0a80000 + uint32(i*7)),
		SrcPort:  uint16(1024 + i),
		DstPort:  uint16(80 + i%3),
		Protocol: fivetuple.ProtoTCP,
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New[int](4, 64)
	h := header(1)
	if _, ok := c.Get(1, h); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(1, h, 42)
	got, ok := c.Get(1, h)
	if !ok || got != 42 {
		t.Fatalf("Get after Put = (%d, %v), want (42, true)", got, ok)
	}
	stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", stats)
	}
}

func TestGenerationMismatchNeverServes(t *testing.T) {
	c := New[int](1, 16)
	h := header(2)
	c.Put(1, h, 10)

	// A reader serving a newer snapshot must not see the old verdict.
	if _, ok := c.Get(2, h); ok {
		t.Fatal("entry of generation 1 served to a generation-2 reader")
	}
	stats := c.Stats()
	if stats.StaleGenerations != 1 {
		t.Errorf("stale counter = %d, want 1", stats.StaleGenerations)
	}
	// The stale entry was dropped: a generation-1 reader misses now too.
	if _, ok := c.Get(1, h); ok {
		t.Fatal("dropped stale entry was served afterwards")
	}
	// Refill under generation 2 and both directions behave.
	c.Put(2, h, 20)
	if got, ok := c.Get(2, h); !ok || got != 20 {
		t.Fatalf("refilled entry = (%d, %v), want (20, true)", got, ok)
	}
	if _, ok := c.Get(3, h); ok {
		t.Fatal("generation-2 entry served to a generation-3 reader")
	}
}

// TestDrainingReaderDoesNotEvictNewerEntries pins the other direction of the
// generation protocol: a reader still draining a superseded snapshot misses
// on a newer-generation entry but must neither serve it, drop it, nor
// overwrite it — otherwise hot entries ping-pong between generations for as
// long as old readers drain after every swap.
func TestDrainingReaderDoesNotEvictNewerEntries(t *testing.T) {
	c := New[int](1, 16)
	h := header(4)
	c.Put(2, h, 20) // filled by a reader of the new snapshot

	if _, ok := c.Get(1, h); ok {
		t.Fatal("generation-2 entry served to a draining generation-1 reader")
	}
	c.Put(1, h, 10) // the draining reader writes back its recomputed verdict
	if got, ok := c.Get(2, h); !ok || got != 20 {
		t.Fatalf("new-generation entry after a draining reader's Get+Put = (%d, %v), want the retained (20, true)", got, ok)
	}
	if s := c.Stats(); s.StaleGenerations != 0 {
		t.Errorf("draining-reader misses were counted as stale drops: %+v", s)
	}
}

func TestPutOverwritesSameKey(t *testing.T) {
	c := New[int](1, 16)
	h := header(3)
	c.Put(1, h, 1)
	c.Put(2, h, 2)
	if got, ok := c.Get(2, h); !ok || got != 2 {
		t.Fatalf("Get = (%d, %v), want the overwritten (2, true)", got, ok)
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("overwriting the same key counted as an eviction")
	}
}

func TestClockEvictionWithinBucket(t *testing.T) {
	// One shard with exactly one bucket: every insert shares the bucket, so
	// inserting more than `ways` distinct keys must evict.
	c := New[int](1, 1)
	if c.Capacity() != ways {
		t.Fatalf("capacity = %d, want one bucket of %d ways", c.Capacity(), ways)
	}
	n := ways + 3
	for i := 0; i < n; i++ {
		c.Put(1, header(i), i)
	}
	if ev := c.Stats().Evictions; ev != uint64(n-ways) {
		t.Errorf("evictions = %d, want %d", ev, n-ways)
	}
	survivors := 0
	for i := 0; i < n; i++ {
		if _, ok := c.Get(1, header(i)); ok {
			survivors++
		}
	}
	if survivors != ways {
		t.Errorf("%d entries survive, want exactly %d (bucket capacity)", survivors, ways)
	}
}

func TestClockPrefersUnreferencedVictims(t *testing.T) {
	c := New[int](1, 1)
	for i := 0; i < ways; i++ {
		c.Put(1, header(i), i)
	}
	// First overflow: every slot is referenced (Put sets ref), so the sweep
	// clears all bits and evicts at the hand — slot 0, header(0) — leaving
	// the hand at slot 1 and slots 1..3 unreferenced.
	c.Put(1, header(100), 100)
	if _, ok := c.Get(1, header(0)); ok {
		t.Fatal("first overflow did not evict the hand slot")
	}
	// Re-touch every survivor except header(2). The next sweep starts at
	// slot 1 (referenced) and must skip it to land on the unreferenced
	// slot 2 — a ref-blind round-robin would evict header(1) instead.
	for _, i := range []int{1, 3, 100} {
		if _, ok := c.Get(1, header(i)); !ok {
			t.Fatalf("warm entry %d missing", i)
		}
	}
	c.Put(1, header(200), 200)
	if _, ok := c.Get(1, header(2)); ok {
		t.Error("unreferenced entry survived the CLOCK sweep; a referenced one was evicted instead")
	}
	for _, i := range []int{1, 3, 100, 200} {
		if _, ok := c.Get(1, header(i)); !ok {
			t.Errorf("referenced entry %d was evicted before the unreferenced one", i)
		}
	}
}

func TestGeometryRounding(t *testing.T) {
	cases := []struct {
		shards, capacity       int
		wantShards             int
		wantCapacityAtLeast    int
		wantPowerOfTwoPerShard bool
	}{
		{0, 0, 8, 8 * ways, true},
		{3, 100, 4, 100, true},
		{1, 5, 1, ways, true},
		{16, 4096, 16, 4096, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%d_%d", tc.shards, tc.capacity), func(t *testing.T) {
			c := New[int](tc.shards, tc.capacity)
			if c.Shards() != tc.wantShards {
				t.Errorf("Shards() = %d, want %d", c.Shards(), tc.wantShards)
			}
			if c.Capacity() < tc.wantCapacityAtLeast {
				t.Errorf("Capacity() = %d, want >= %d", c.Capacity(), tc.wantCapacityAtLeast)
			}
			perShard := c.Capacity() / c.Shards() / ways
			if perShard&(perShard-1) != 0 {
				t.Errorf("buckets per shard = %d, want a power of two", perShard)
			}
			if c.FootprintBits() <= 0 {
				t.Errorf("FootprintBits() = %d, want > 0", c.FootprintBits())
			}
		})
	}
}

func TestResetStatsKeepsEntries(t *testing.T) {
	c := New[int](2, 32)
	h := header(9)
	c.Put(1, h, 9)
	if _, ok := c.Get(1, h); !ok {
		t.Fatal("warm entry missing")
	}
	c.ResetStats()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", s)
	}
	if got, ok := c.Get(1, h); !ok || got != 9 {
		t.Errorf("entry lost by ResetStats: (%d, %v)", got, ok)
	}
}

// TestConcurrentAccess exercises all shards from many goroutines under -race:
// mixed gets, puts and generation bumps must stay data-race free and every
// served value must be the one stored for that (generation, key) pair.
func TestConcurrentAccess(t *testing.T) {
	c := New[uint64](4, 256)
	const goroutines = 8
	const opsPerG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				h := header(i % 97)
				gen := uint64(1 + i%3)
				want := gen*1000 + uint64(i%97)
				if got, ok := c.Get(gen, h); ok && got != want {
					t.Errorf("Get(gen=%d, key=%d) = %d, want %d", gen, i%97, got, want)
					return
				}
				c.Put(gen, h, want)
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Hits+s.Misses != goroutines*opsPerG {
		t.Errorf("hits+misses = %d, want %d", s.Hits+s.Misses, goroutines*opsPerG)
	}
}
