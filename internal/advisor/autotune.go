package advisor

import (
	"sync"
	"time"

	"sdnpc/internal/core"
)

// AutoTunerOptions parameterise the background tuner.
type AutoTunerOptions struct {
	// Interval is the advise period; <= 0 selects
	// core.DefaultAutoTuneInterval.
	Interval time.Duration
	// Stable is how many consecutive ticks must agree on the same top
	// engine before it is applied; <= 0 selects 2. This is the hysteresis
	// that keeps a flapping signal from flapping the engine.
	Stable int
	// Cooldown is the minimum time between applies; <= 0 selects
	// 4×Interval. A recently abandoned engine additionally may not be
	// switched back to within 4×Cooldown, so the tuner can never ping-pong
	// between two engines even if the signal oscillates slowly.
	Cooldown time.Duration
	// Advisor configures the underlying Advise calls.
	Advisor Options
	// OnApply, when set, is called after each applied recommendation —
	// the serving layer's log hook.
	OnApply func(Recommendation)
}

// AutoTuner periodically runs the advisor against a live classifier and
// auto-applies its recommendations through the atomic switch paths, with
// hysteresis. It is the opt-in behind Config.AutoTune; construction does
// not start it.
type AutoTuner struct {
	c    *core.Classifier
	opts AutoTunerOptions

	// advise is the decision source, injectable so the hysteresis logic is
	// testable against a scripted signal.
	advise func() ([]Recommendation, error)

	mu          sync.Mutex
	lastTop     string    // top engine of the previous tick
	streak      int       // consecutive ticks agreeing on lastTop
	lastApply   time.Time // last engine apply
	abandoned   string    // engine we last switched away from
	abandonedAt time.Time
	lastPolicy  time.Time // last update-policy apply
	applied     []Recommendation

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewAutoTuner builds a tuner for the classifier. Call Start to begin
// ticking and Stop to halt it.
func NewAutoTuner(c *core.Classifier, opts AutoTunerOptions) *AutoTuner {
	if opts.Interval <= 0 {
		opts.Interval = core.DefaultAutoTuneInterval
	}
	if opts.Stable <= 0 {
		opts.Stable = 2
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 4 * opts.Interval
	}
	t := &AutoTuner{
		c:    c,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	t.advise = func() ([]Recommendation, error) { return Advise(c, opts.Advisor) }
	return t
}

// Start launches the tuner goroutine. Calling Start twice is a no-op.
func (t *AutoTuner) Start() {
	t.startOnce.Do(func() {
		go t.run()
	})
}

// Stop halts the tuner and waits for the in-flight tick, if any, to finish.
// Safe to call more than once, and before Start (the loop then exits on its
// first wakeup).
func (t *AutoTuner) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.startOnce.Do(func() { close(t.done) }) // never started: nothing to wait for
	<-t.done
}

// Applied returns the recommendations the tuner has auto-applied so far.
func (t *AutoTuner) Applied() []Recommendation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Recommendation(nil), t.applied...)
}

func (t *AutoTuner) run() {
	defer close(t.done)
	ticker := time.NewTicker(t.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.tick(time.Now())
		}
	}
}

// tick runs one advise round and applies what the hysteresis allows. It is
// the unit the tests drive directly with a scripted clock.
func (t *AutoTuner) tick(now time.Time) {
	recs, err := t.advise()
	if err != nil {
		return
	}
	var top *Recommendation
	for i := range recs {
		if recs[i].Kind == KindEngine {
			top = &recs[i]
			break
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	// Update-policy recommendations carry no switch cost and cannot flap
	// the serving engine; they still rate-limit on the cooldown so a noisy
	// signal doesn't thrash the policy either.
	for _, r := range recs {
		if r.Kind != KindUpdatePolicy {
			continue
		}
		if now.Sub(t.lastPolicy) < t.opts.Cooldown {
			break
		}
		if Apply(t.c, r) == nil {
			t.lastPolicy = now
			t.applied = append(t.applied, r)
			if t.opts.OnApply != nil {
				t.opts.OnApply(r)
			}
		}
		break
	}

	// Engine hysteresis: the same target must win Stable consecutive
	// ticks, outside the cooldown window, and must not be the engine we
	// just abandoned.
	if top == nil {
		t.lastTop, t.streak = "", 0
		return
	}
	if top.Engine != t.lastTop {
		t.lastTop, t.streak = top.Engine, 1
		return
	}
	t.streak++
	if t.streak < t.opts.Stable {
		return
	}
	if now.Sub(t.lastApply) < t.opts.Cooldown {
		return
	}
	if top.Engine == t.abandoned && now.Sub(t.abandonedAt) < 4*t.opts.Cooldown {
		return
	}
	prev := t.c.ActiveEngineName()
	if Apply(t.c, *top) != nil {
		return
	}
	t.abandoned, t.abandonedAt = prev, now
	t.lastApply = now
	t.lastTop, t.streak = "", 0
	t.applied = append(t.applied, *top)
	if t.opts.OnApply != nil {
		t.opts.OnApply(*top)
	}
}
