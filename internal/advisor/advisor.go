// Package advisor is the self-tuning control plane: it turns the live
// signals a running Classifier already exposes (cache hit rate, publish
// latency, delta debt, memory bits) plus a shadow bench of candidate
// engines on sampled traffic into ranked, applicable Recommendations.
//
// The flow is signal → shadow-bench → recommend:
//
//  1. analyze reads one Classifier.Report() and derives the workload's
//     pressure profile — how much raw engine speed matters versus memory
//     footprint (a hot cache absorbs repeated flows, so the engine behind
//     it should be chosen for leanness; a cold cache puts every packet on
//     the engine, so speed dominates) — along with decision-table
//     recommendations for the update policy and the cache.
//  2. shadowBench replays a sampled slice of recent traffic (the
//     ring-buffer sampler in internal/core, or a synthetic trace derived
//     from the installed rules when sampling is off) against a fresh
//     classifier per candidate engine, under a bounded CPU budget.
//  3. rankEngines scores every candidate by the profile-weighted blend of
//     measured speed and memory, and recommends a switch only when it beats
//     the active engine by a clear margin.
//
// Recommendations are advisory; Apply routes one through the classifier's
// already-atomic switch paths (SelectEngine, SetUpdatePolicy), and
// AutoTuner does so periodically behind Config.AutoTune with hysteresis.
package advisor

import (
	"fmt"
	"sort"
	"time"

	"sdnpc/internal/bench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// Kind classifies what a Recommendation asks to change.
type Kind string

// Recommendation kinds.
const (
	// KindEngine recommends switching the serving engine (either tier);
	// apply through SelectEngine.
	KindEngine Kind = "engine"
	// KindUpdatePolicy recommends new delta-vs-rebuild policy bounds; apply
	// through SetUpdatePolicy.
	KindUpdatePolicy Kind = "update-policy"
	// KindCache flags a cache configuration mismatch. Cache geometry is
	// fixed at construction, so this kind is advisory only.
	KindCache Kind = "cache"
)

// Recommendation is one ranked, self-describing tuning suggestion.
type Recommendation struct {
	// Kind selects which fields below are meaningful.
	Kind Kind `json:"kind"`
	// Engine is the target engine of a KindEngine recommendation.
	Engine string `json:"engine,omitempty"`
	// RebuildAfterDeltas and DegradationThreshold are the suggested policy
	// bounds of a KindUpdatePolicy recommendation (Config conventions:
	// 0 = default).
	RebuildAfterDeltas   int     `json:"rebuild_after_deltas,omitempty"`
	DegradationThreshold float64 `json:"degradation_threshold,omitempty"`
	// Reason explains the signal that produced the recommendation.
	Reason string `json:"reason"`
	// Score orders recommendations (higher = stronger). For KindEngine it
	// is the relative score improvement over the active engine.
	Score float64 `json:"score"`
	// NsPerLookup and MemoryBits carry the shadow-bench measurements behind
	// a KindEngine recommendation (0 when estimated from a persisted bench
	// record instead of measured).
	NsPerLookup float64 `json:"ns_per_lookup,omitempty"`
	MemoryBits  int     `json:"memory_bits,omitempty"`
}

// String renders the recommendation for logs.
func (r Recommendation) String() string {
	switch r.Kind {
	case KindEngine:
		return fmt.Sprintf("engine → %s (score %+.0f%%): %s", r.Engine, 100*r.Score, r.Reason)
	case KindUpdatePolicy:
		return fmt.Sprintf("update policy → rebuild-after-deltas %d, degradation %.2f: %s",
			r.RebuildAfterDeltas, r.DegradationThreshold, r.Reason)
	default:
		return fmt.Sprintf("%s: %s", r.Kind, r.Reason)
	}
}

// Decision-table thresholds. They are deliberately coarse: the advisor's
// job is to notice unambiguous pressure, not to chase noise.
const (
	// minSignalLookups is the traffic floor below which the cache hit rate
	// is considered unmeasured.
	minSignalLookups = 256
	// highDeltaDebt is the delta-debt depth that triggers a tighter
	// RebuildAfterDeltas recommendation.
	highDeltaDebt = 128
	// worryingDegradation is the incremental-engine drift that triggers a
	// tighter DegradationThreshold recommendation.
	worryingDegradation = 0.4
)

// Options parameterise one Advise call. The zero value selects usable
// defaults everywhere.
type Options struct {
	// Candidates restricts the shadow-benched engines; empty selects every
	// selectable engine of both tiers.
	Candidates []string
	// MaxRules caps how many installed rules are replayed into each shadow
	// classifier; <= 0 selects 2000.
	MaxRules int
	// MaxHeaders caps the sampled-traffic slice each candidate replays;
	// <= 0 selects 1024.
	MaxHeaders int
	// Budget bounds the total shadow-bench CPU time, divided evenly across
	// candidates; <= 0 selects 200ms.
	Budget time.Duration
	// MemoryBudgetBits, when > 0, marks the classifier's memory use as
	// oversized once Report().Memory.TotalUsedBits() exceeds it, shifting
	// the ranking toward lean engines.
	MemoryBudgetBits int
	// MinCacheHitRate is the hit rate below which the cache is flagged as
	// ineffective; <= 0 selects 0.5.
	MinCacheHitRate float64
	// Margin is the minimum relative score improvement over the active
	// engine before a switch is recommended; <= 0 selects 0.10.
	Margin float64
	// Record, when set, is a persisted BENCH_*.json artifact used to
	// estimate the lookup cost of candidates whose shadow bench could not
	// run (e.g. zero budget left). See bench.LatestRecord.
	Record *bench.Record
}

func (o Options) withDefaults() Options {
	if o.MaxRules <= 0 {
		o.MaxRules = 2000
	}
	if o.MaxHeaders <= 0 {
		o.MaxHeaders = 1024
	}
	if o.Budget <= 0 {
		o.Budget = 200 * time.Millisecond
	}
	if o.MinCacheHitRate <= 0 {
		o.MinCacheHitRate = 0.5
	}
	if o.Margin <= 0 {
		o.Margin = 0.10
	}
	return o
}

// signals is the analyzed pressure profile of one Report: how the engine
// ranking should weigh measured speed against memory footprint, plus the
// decision-table recommendations that don't need a shadow bench.
type signals struct {
	// speedWeight and memoryWeight blend the shadow-bench scores; they sum
	// to 1.
	speedWeight  float64
	memoryWeight float64
	// reasons collects the human-readable signal trail.
	reasons []string
	// extra holds the policy/cache recommendations from the decision table.
	extra []Recommendation
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// analyze runs the decision table over one observability snapshot. It is a
// pure function of the Report, which is what makes the table testable from
// synthetic fixtures.
func analyze(rep core.Report, opts Options) signals {
	sig := signals{speedWeight: 0.5, memoryWeight: 0.5}

	// Cache signal: a hot cache answers the repeated flows itself, so the
	// engine behind it is consulted rarely and should be chosen for memory
	// leanness; a cold (or absent) cache puts every packet on the engine.
	cacheLookups := rep.Cache.Hits + rep.Cache.Misses
	switch {
	case !rep.CacheEnabled:
		sig.speedWeight = 0.75
		sig.reasons = append(sig.reasons, "no microflow cache: every packet pays the engine, speed dominates")
	case cacheLookups >= minSignalLookups:
		hit := float64(rep.Cache.Hits) / float64(cacheLookups)
		sig.speedWeight = clamp(1-hit, 0.1, 0.9)
		if hit < opts.MinCacheHitRate {
			sig.reasons = append(sig.reasons,
				fmt.Sprintf("cache hit rate %.0f%% below %.0f%%: traffic is cache-unfriendly, engine speed dominates",
					100*hit, 100*opts.MinCacheHitRate))
			sig.extra = append(sig.extra, Recommendation{
				Kind:  KindCache,
				Score: clamp(opts.MinCacheHitRate-hit, 0.05, 0.5),
				Reason: fmt.Sprintf("microflow cache answers only %.0f%% of lookups; consider more capacity or disabling it to reclaim %d Kbit",
					100*hit, rep.Memory.CacheBits/1024),
			})
		} else {
			sig.reasons = append(sig.reasons,
				fmt.Sprintf("cache hit rate %.0f%% absorbs the hot flows: engine memory matters more than raw speed", 100*hit))
		}
	default:
		sig.reasons = append(sig.reasons,
			fmt.Sprintf("only %d cached lookups observed (< %d): cache signal unmeasured", cacheLookups, minSignalLookups))
	}

	// Memory-budget signal overrides the blend: an oversized table must
	// shrink regardless of traffic shape.
	if opts.MemoryBudgetBits > 0 && rep.Memory.TotalUsedBits() > opts.MemoryBudgetBits {
		sig.speedWeight = 0.15
		sig.reasons = append(sig.reasons,
			fmt.Sprintf("memory %d bits over the %d-bit budget: leanness dominates",
				rep.Memory.TotalUsedBits(), opts.MemoryBudgetBits))
	}
	sig.memoryWeight = 1 - sig.speedWeight

	// Update-plane signals: deep delta debt means the incremental structure
	// has drifted far from a fresh build; worrying degradation means the
	// engine itself is reporting the drift. Both call for tighter rebuild
	// bounds, applied through SetUpdatePolicy.
	if debt := rep.Updates.DeltasSinceRebuild; debt >= highDeltaDebt {
		sig.extra = append(sig.extra, Recommendation{
			Kind:               KindUpdatePolicy,
			RebuildAfterDeltas: debt / 2,
			Score:              clamp(float64(debt)/float64(4*highDeltaDebt), 0.2, 0.8),
			Reason: fmt.Sprintf("delta debt %d deep (publish P99 %v): bound it at %d so rebuilds amortise the drift",
				debt, rep.Updates.PublishLatency.P99(), debt/2),
		})
	}
	if deg := rep.Memory.PacketEngineDegradation; deg >= worryingDegradation {
		sig.extra = append(sig.extra, Recommendation{
			Kind:                 KindUpdatePolicy,
			RebuildAfterDeltas:   rep.Updates.DeltasSinceRebuild / 2,
			DegradationThreshold: worryingDegradation / 2,
			Score:                clamp(deg, 0.2, 0.9),
			Reason: fmt.Sprintf("packet structure degradation %.2f: trip rebuilds at %.2f before lookup cost drifts further",
				deg, worryingDegradation/2),
		})
	}
	return sig
}

// Advise produces ranked recommendations for a live classifier: the
// decision-table output of its current Report plus, when traffic and rules
// are available, an engine recommendation from shadow-benching candidates
// on sampled traffic. The strongest recommendation sorts first. An empty
// slice means the current configuration already looks right.
func Advise(c *core.Classifier, opts Options) ([]Recommendation, error) {
	opts = opts.withDefaults()
	rep := c.Report()
	sig := analyze(rep, opts)
	recs := append([]Recommendation(nil), sig.extra...)

	rules := c.InstalledRules()
	headers := c.SampledHeaders()
	if len(headers) > opts.MaxHeaders {
		headers = headers[len(headers)-opts.MaxHeaders:]
	}
	if len(headers) == 0 {
		headers = syntheticTrace(rules, opts.MaxHeaders)
	}
	if len(rules) > 0 && len(headers) > 0 {
		cfg := c.Config()
		results := shadowBench(benchSet(rules, opts.MaxRules), headers, candidates(cfg, rep, opts), opts.Budget)
		if eng, ok := rankEngines(results, sig, rep, opts); ok {
			recs = append(recs, eng)
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Score > recs[j].Score })
	return recs, nil
}

// benchSet caps the rule slice replayed into shadow classifiers.
func benchSet(rules []fivetuple.Rule, maxRules int) []fivetuple.Rule {
	if len(rules) > maxRules {
		return rules[:maxRules]
	}
	return rules
}

// candidates resolves the engine candidate list: the configured names or
// every selectable engine, minus any whose capacity cannot hold the full
// installed rule set (SelectEngine would reject the switch anyway).
func candidates(cfg core.Config, rep core.Report, opts Options) []string {
	names := opts.Candidates
	if len(names) == 0 {
		names = engine.SelectableNames()
	}
	out := names[:0:0]
	for _, name := range names {
		if cfg.RuleCapacityFor(name) < rep.RulesInstalled {
			continue
		}
		out = append(out, name)
	}
	return out
}

// rankEngines scores the shadow-bench results by the profile-weighted blend
// of speed and memory and recommends the winner when it clearly beats the
// active engine.
func rankEngines(results []shadowResult, sig signals, rep core.Report, opts Options) (Recommendation, bool) {
	// Normalisation bases: the best (lowest) measured cost on each axis.
	minNs, minMem := 0.0, 0
	for _, r := range results {
		r = recordFallback(r, opts)
		if r.Err != nil {
			continue
		}
		if minNs == 0 || r.NsPerLookup < minNs {
			minNs = r.NsPerLookup
		}
		if r.MemoryBits > 0 && (minMem == 0 || r.MemoryBits < minMem) {
			minMem = r.MemoryBits
		}
	}
	if minNs == 0 {
		return Recommendation{}, false
	}

	score := func(r shadowResult) float64 {
		s := sig.speedWeight * (minNs / r.NsPerLookup)
		if r.MemoryBits > 0 && minMem > 0 {
			s += sig.memoryWeight * (float64(minMem) / float64(r.MemoryBits))
		}
		return s
	}

	var best shadowResult
	bestScore, activeScore := 0.0, 0.0
	for _, r := range results {
		r = recordFallback(r, opts)
		if r.Err != nil {
			continue
		}
		s := score(r)
		if r.Engine == rep.ActiveEngine {
			activeScore = s
		}
		if s > bestScore {
			best, bestScore = r, s
		}
	}
	if best.Engine == "" || best.Engine == rep.ActiveEngine {
		return Recommendation{}, false
	}
	if activeScore > 0 && bestScore < activeScore*(1+opts.Margin) {
		return Recommendation{}, false
	}
	improvement := 1.0
	if activeScore > 0 {
		improvement = bestScore/activeScore - 1
	}
	return Recommendation{
		Kind:        KindEngine,
		Engine:      best.Engine,
		Score:       improvement,
		NsPerLookup: best.NsPerLookup,
		MemoryBits:  best.MemoryBits,
		Reason: fmt.Sprintf("shadow bench replayed %d lookups over sampled traffic: %s scores %.2f vs %s %.2f (speed weight %.2f — %s)",
			best.Lookups, best.Engine, bestScore, rep.ActiveEngine, activeScore,
			sig.speedWeight, reasonSummary(sig)),
	}, true
}

// recordFallback substitutes a persisted bench-record estimate for a
// candidate whose shadow bench failed, when a record is available. The
// memory axis stays unmeasured (0), so the candidate competes on the
// recorded speed alone.
func recordFallback(r shadowResult, opts Options) shadowResult {
	if r.Err == nil || opts.Record == nil {
		return r
	}
	if ns, ok := opts.Record.LookupNs(r.Engine); ok {
		return shadowResult{Engine: r.Engine, NsPerLookup: ns}
	}
	return r
}

func reasonSummary(sig signals) string {
	if len(sig.reasons) == 0 {
		return "no dominant signal"
	}
	return sig.reasons[0]
}

// Apply routes one recommendation through the classifier's atomic
// reconfiguration paths. Advisory-only kinds return an error rather than
// guessing at an action.
func Apply(c *core.Classifier, r Recommendation) error {
	switch r.Kind {
	case KindEngine:
		return c.SelectEngine(r.Engine)
	case KindUpdatePolicy:
		return c.SetUpdatePolicy(r.RebuildAfterDeltas, r.DegradationThreshold)
	default:
		return fmt.Errorf("advisor: recommendation kind %q is advisory only", r.Kind)
	}
}

// syntheticTrace derives a replayable header slice from the installed rules
// when no live samples exist: one deterministic in-rule header per rule,
// cycled up to maxHeaders. It exercises every engine on the actual rule
// geometry, which is the best available stand-in for unknown traffic.
func syntheticTrace(rules []fivetuple.Rule, maxHeaders int) []fivetuple.Header {
	if len(rules) == 0 {
		return nil
	}
	n := len(rules)
	if n > maxHeaders {
		n = maxHeaders
	}
	out := make([]fivetuple.Header, n)
	for i := range out {
		out[i] = syntheticHeader(rules[i])
	}
	return out
}

// syntheticHeader builds one header inside the rule's match region.
func syntheticHeader(r fivetuple.Rule) fivetuple.Header {
	h := fivetuple.Header{
		SrcIP:   r.SrcPrefix.Addr & r.SrcPrefix.Mask(),
		DstIP:   r.DstPrefix.Addr & r.DstPrefix.Mask(),
		SrcPort: r.SrcPort.Lo,
		DstPort: r.DstPort.Lo,
	}
	if r.Protocol.IsWildcard() {
		h.Protocol = fivetuple.ProtoTCP
	} else {
		h.Protocol = r.Protocol.Value & r.Protocol.Mask
	}
	return h
}
