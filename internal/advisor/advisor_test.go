package advisor

import (
	"strings"
	"testing"
	"time"

	"sdnpc/internal/bench"
	"sdnpc/internal/cache"
	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
)

// TestAnalyzeDecisionTable pins the signal → profile mapping on synthetic
// Report fixtures: each row is one unambiguous pressure signal and the
// profile (or extra recommendation) the table must produce for it.
func TestAnalyzeDecisionTable(t *testing.T) {
	opts := Options{}.withDefaults()

	tests := []struct {
		name  string
		rep   core.Report
		check func(t *testing.T, sig signals)
	}{
		{
			name: "no cache: speed dominates",
			rep:  core.Report{},
			check: func(t *testing.T, sig signals) {
				if sig.speedWeight != 0.75 {
					t.Fatalf("speedWeight = %.2f, want 0.75", sig.speedWeight)
				}
			},
		},
		{
			name: "low hit rate: speed dominates and the cache is flagged",
			rep: core.Report{
				CacheEnabled: true,
				Cache:        cache.Stats{Hits: 50, Misses: 950},
			},
			check: func(t *testing.T, sig signals) {
				if sig.speedWeight != 0.9 {
					t.Fatalf("speedWeight = %.2f, want 0.9 (clamped)", sig.speedWeight)
				}
				if !hasKind(sig.extra, KindCache) {
					t.Fatalf("expected a %s recommendation, got %v", KindCache, sig.extra)
				}
			},
		},
		{
			name: "high hit rate: memory dominates, no cache flag",
			rep: core.Report{
				CacheEnabled: true,
				Cache:        cache.Stats{Hits: 950, Misses: 50},
			},
			check: func(t *testing.T, sig signals) {
				if sig.speedWeight != 0.1 {
					t.Fatalf("speedWeight = %.2f, want 0.1 (clamped)", sig.speedWeight)
				}
				if sig.memoryWeight != 0.9 {
					t.Fatalf("memoryWeight = %.2f, want 0.9", sig.memoryWeight)
				}
				if hasKind(sig.extra, KindCache) {
					t.Fatalf("hot cache must not be flagged: %v", sig.extra)
				}
			},
		},
		{
			name: "too little traffic: cache signal unmeasured, balanced blend",
			rep: core.Report{
				CacheEnabled: true,
				Cache:        cache.Stats{Hits: 10, Misses: 10},
			},
			check: func(t *testing.T, sig signals) {
				if sig.speedWeight != 0.5 {
					t.Fatalf("speedWeight = %.2f, want 0.5", sig.speedWeight)
				}
			},
		},
		{
			name: "oversized memory overrides the blend",
			rep: core.Report{
				CacheEnabled: true,
				Cache:        cache.Stats{Hits: 50, Misses: 950}, // would say speed...
				Memory:       core.MemoryReport{RuleFilterUsedBits: 5000},
			},
			check: func(t *testing.T, sig signals) {
				if sig.speedWeight != 0.15 {
					t.Fatalf("speedWeight = %.2f, want 0.15 (memory budget override)", sig.speedWeight)
				}
			},
		},
		{
			name: "deep delta debt: tighter rebuild bound",
			rep: core.Report{
				Updates: core.UpdateStats{DeltasSinceRebuild: 500},
			},
			check: func(t *testing.T, sig signals) {
				r, ok := findKind(sig.extra, KindUpdatePolicy)
				if !ok {
					t.Fatalf("expected a %s recommendation, got %v", KindUpdatePolicy, sig.extra)
				}
				if r.RebuildAfterDeltas != 250 {
					t.Fatalf("RebuildAfterDeltas = %d, want 250 (debt/2)", r.RebuildAfterDeltas)
				}
			},
		},
		{
			name: "worrying degradation: tighter degradation trip",
			rep: core.Report{
				Memory: core.MemoryReport{PacketEngineDegradation: 0.6},
			},
			check: func(t *testing.T, sig signals) {
				r, ok := findKind(sig.extra, KindUpdatePolicy)
				if !ok {
					t.Fatalf("expected a %s recommendation, got %v", KindUpdatePolicy, sig.extra)
				}
				if r.DegradationThreshold != worryingDegradation/2 {
					t.Fatalf("DegradationThreshold = %.2f, want %.2f", r.DegradationThreshold, worryingDegradation/2)
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := opts
			if strings.Contains(tt.name, "oversized") {
				o.MemoryBudgetBits = 1000
			}
			sig := analyze(tt.rep, o)
			if got := sig.speedWeight + sig.memoryWeight; got < 0.999 || got > 1.001 {
				t.Fatalf("weights must sum to 1, got %.3f", got)
			}
			tt.check(t, sig)
		})
	}
}

func hasKind(recs []Recommendation, k Kind) bool {
	_, ok := findKind(recs, k)
	return ok
}

func findKind(recs []Recommendation, k Kind) (Recommendation, bool) {
	for _, r := range recs {
		if r.Kind == k {
			return r, true
		}
	}
	return Recommendation{}, false
}

// TestRankEnginesWeighting pins the ranking blend on fabricated shadow
// results: under a speed-heavy profile the fast-but-fat engine wins; under a
// memory-heavy profile the slow-but-lean one does; and the margin gate keeps
// marginal improvements from recommending a switch at all.
func TestRankEnginesWeighting(t *testing.T) {
	results := []shadowResult{
		{Engine: "fast", NsPerLookup: 100, MemoryBits: 1 << 20, Lookups: 1000},
		{Engine: "lean", NsPerLookup: 400, MemoryBits: 1 << 16, Lookups: 1000},
		{Engine: "active", NsPerLookup: 300, MemoryBits: 1 << 18, Lookups: 1000},
	}
	rep := core.Report{ActiveEngine: "active"}
	opts := Options{}.withDefaults()

	speedy := signals{speedWeight: 0.9, memoryWeight: 0.1}
	if r, ok := rankEngines(results, speedy, rep, opts); !ok || r.Engine != "fast" {
		t.Fatalf("speed-heavy profile: got (%+v, %v), want engine fast", r, ok)
	}

	leanFirst := signals{speedWeight: 0.1, memoryWeight: 0.9}
	if r, ok := rankEngines(results, leanFirst, rep, opts); !ok || r.Engine != "lean" {
		t.Fatalf("memory-heavy profile: got (%+v, %v), want engine lean", r, ok)
	}

	// Margin gate: when the best candidate is barely ahead of the active
	// engine, no switch is recommended.
	close := []shadowResult{
		{Engine: "active", NsPerLookup: 100, MemoryBits: 1 << 18, Lookups: 1000},
		{Engine: "rival", NsPerLookup: 98, MemoryBits: 1 << 18, Lookups: 1000},
	}
	if r, ok := rankEngines(close, speedy, rep, opts); ok {
		t.Fatalf("margin gate: %2.0f%% improvement must not recommend a switch, got %+v", 100*r.Score, r)
	}

	// Already optimal: active engine winning recommends nothing.
	best := []shadowResult{
		{Engine: "active", NsPerLookup: 50, MemoryBits: 1 << 14, Lookups: 1000},
		{Engine: "rival", NsPerLookup: 400, MemoryBits: 1 << 20, Lookups: 1000},
	}
	if r, ok := rankEngines(best, speedy, rep, opts); ok {
		t.Fatalf("active engine already best: want no recommendation, got %+v", r)
	}

	// All candidates errored: nothing to rank.
	dead := []shadowResult{{Engine: "x", Err: errFixture}}
	if _, ok := rankEngines(dead, speedy, rep, opts); ok {
		t.Fatal("all-errored results must not produce a recommendation")
	}
}

var errFixture = &fixtureErr{}

type fixtureErr struct{}

func (*fixtureErr) Error() string { return "fixture" }

// TestRecordFallback verifies that a candidate whose shadow bench failed can
// still compete on the speed recorded in a persisted BENCH_*.json artifact.
func TestRecordFallback(t *testing.T) {
	rec := &bench.Record{
		Results: []bench.RecordResult{{
			Experiment: "engines",
			Engine:     "broken",
			Metrics:    map[string]float64{"mlookups_per_sec": 10}, // 100 ns/lookup
		}},
	}
	in := shadowResult{Engine: "broken", Err: errFixture}
	out := recordFallback(in, Options{Record: rec})
	if out.Err != nil || out.NsPerLookup != 100 {
		t.Fatalf("recordFallback = %+v, want 100 ns estimate with nil Err", out)
	}
	// No record: the error stands.
	if out := recordFallback(in, Options{}); out.Err == nil {
		t.Fatal("without a record the errored result must stand")
	}
	// Healthy results are never overridden.
	ok := shadowResult{Engine: "fine", NsPerLookup: 7}
	if out := recordFallback(ok, Options{Record: rec}); out.NsPerLookup != 7 {
		t.Fatalf("healthy result overridden: %+v", out)
	}
}

// TestAdviseLiveClassifier runs the full Advise flow against a real
// classifier with installed rules and no sampled traffic (synthetic-trace
// path): it must return without error, rank recommendations strongest first,
// and every engine recommendation must be applicable through Apply.
func TestAdviseLiveClassifier(t *testing.T) {
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 500, Seed: 42})
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}

	recs, err := Advise(c, Options{
		Candidates: []string{"mbt", "bst", "hypercuts"},
		Budget:     30 * time.Millisecond,
		MaxHeaders: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatalf("recommendations not sorted by score: %v", recs)
		}
	}
	for _, r := range recs {
		if r.Kind != KindEngine {
			continue
		}
		if err := Apply(c, r); err != nil {
			t.Fatalf("Apply(%v): %v", r, err)
		}
		if got := c.ActiveEngineName(); got != r.Engine {
			t.Fatalf("after Apply active engine = %q, want %q", got, r.Engine)
		}
	}

	// Advisory-only kinds must refuse to apply.
	if err := Apply(c, Recommendation{Kind: KindCache}); err == nil {
		t.Fatal("Apply(KindCache) must error: cache geometry is construction-time")
	}
}

// TestSyntheticTraceMatchesRules verifies the fallback trace is drawn from
// inside the rules' match regions, so shadow benches exercise real matches.
func TestSyntheticTraceMatchesRules(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 200, Seed: 7})
	rules := rs.Rules()
	hs := syntheticTrace(rules, 128)
	if len(hs) != 128 {
		t.Fatalf("len = %d, want capped at 128", len(hs))
	}
	for i, h := range hs {
		if !rules[i].Matches(h) {
			t.Fatalf("header %d does not match its source rule", i)
		}
	}
	if got := syntheticTrace(nil, 128); got != nil {
		t.Fatalf("no rules must yield no trace, got %d headers", len(got))
	}
}
