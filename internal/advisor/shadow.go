package advisor

import (
	"fmt"
	"time"

	"sdnpc/internal/bench"
	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
)

// shadowResult is one candidate engine's measured cost on the sampled
// traffic slice.
type shadowResult struct {
	Engine string
	// NsPerLookup is the measured wall-clock cost per header.
	NsPerLookup float64
	// MemoryBits is the engine's used block memory holding the benched rule
	// set (Report().Memory.TotalUsedBits()).
	MemoryBits int
	// Lookups is how many headers the bench replayed before its slice of
	// the budget ran out.
	Lookups int
	// Err marks a candidate that could not be benched (build failure, rules
	// rejected); it is excluded from ranking unless a persisted record can
	// estimate it.
	Err error
}

// shadowBatch is the replay batch size: large enough to amortise the batch
// call, small enough that a deadline check every batch keeps the budget
// honest.
const shadowBatch = 256

// shadowBench replays the header slice against a fresh classifier per
// candidate engine, dividing the CPU budget evenly. The shadow classifiers
// run cache-less and sampler-less: the bench measures the engine itself,
// not the serving path around it.
func shadowBench(rules []fivetuple.Rule, headers []fivetuple.Header, names []string, budget time.Duration) []shadowResult {
	if len(names) == 0 {
		return nil
	}
	slice := budget / time.Duration(len(names))
	results := make([]shadowResult, 0, len(names))
	for _, name := range names {
		results = append(results, benchOne(name, rules, headers, slice))
	}
	return results
}

// benchOne builds one shadow classifier, installs the rule slice as a
// single batch, and replays the headers until its budget slice expires
// (always completing at least one full pass, so short slices still yield a
// measurement).
func benchOne(name string, rules []fivetuple.Rule, headers []fivetuple.Header, slice time.Duration) shadowResult {
	res := shadowResult{Engine: name}
	c, err := core.New(bench.EngineConfig(name))
	if err != nil {
		res.Err = err
		return res
	}
	ops := make([]core.UpdateOp, len(rules))
	for i, r := range rules {
		ops[i] = core.UpdateOp{Rule: r}
	}
	_, errs, err := c.ApplyUpdates(ops)
	if err != nil {
		res.Err = fmt.Errorf("advisor: shadow %s: %w", name, err)
		return res
	}
	rejected := 0
	for _, e := range errs {
		if e != nil {
			rejected++
		}
	}
	if rejected > 0 {
		res.Err = fmt.Errorf("advisor: shadow %s rejected %d/%d rules", name, rejected, len(rules))
		return res
	}
	res.MemoryBits = c.Report().Memory.TotalUsedBits()

	dst := make([]core.Result, 0, shadowBatch)
	deadline := time.Now().Add(slice)
	start := time.Now()
	for pass := 0; pass == 0 || time.Now().Before(deadline); pass++ {
		for off := 0; off < len(headers); off += shadowBatch {
			end := off + shadowBatch
			if end > len(headers) {
				end = len(headers)
			}
			dst = c.LookupBatchInto(dst, headers[off:end])
			res.Lookups += end - off
		}
	}
	elapsed := time.Since(start)
	if res.Lookups > 0 {
		res.NsPerLookup = float64(elapsed.Nanoseconds()) / float64(res.Lookups)
	}
	if res.NsPerLookup <= 0 {
		res.NsPerLookup = 1 // clock resolution floor; keeps ranking math finite
	}
	return res
}
