package advisor

import (
	"sync"
	"testing"
	"time"

	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
)

// scriptedTuner builds a tuner over a real classifier whose advise calls
// replay a scripted recommendation sequence, and drives ticks with an
// explicit clock — the hysteresis logic under a deterministic signal.
func scriptedTuner(t *testing.T, opts AutoTunerOptions, script []string) (*AutoTuner, *core.Classifier) {
	t.Helper()
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tuner := NewAutoTuner(c, opts)
	i := 0
	tuner.advise = func() ([]Recommendation, error) {
		engine := script[i%len(script)]
		i++
		if engine == "" {
			return nil, nil
		}
		return []Recommendation{{Kind: KindEngine, Engine: engine, Score: 0.5}}, nil
	}
	return tuner, c
}

// TestAutoTunerSuppressesFlapping is the hysteresis pin: a signal that
// oscillates between two engines every tick must never trigger a switch.
func TestAutoTunerSuppressesFlapping(t *testing.T) {
	opts := AutoTunerOptions{Interval: time.Second, Stable: 2, Cooldown: 4 * time.Second}
	tuner, c := scriptedTuner(t, opts, []string{"bst", "hypercuts"})
	active := c.ActiveEngineName()

	now := time.Unix(1000, 0)
	for i := 0; i < 20; i++ {
		tuner.tick(now.Add(time.Duration(i) * opts.Interval))
	}
	if got := c.ActiveEngineName(); got != active {
		t.Fatalf("flapping signal switched the engine %q → %q", active, got)
	}
	if applied := tuner.Applied(); len(applied) != 0 {
		t.Fatalf("flapping signal applied %d recommendations: %v", len(applied), applied)
	}
}

// TestAutoTunerAppliesStableSignal verifies the positive path and the two
// suppression windows around it: a stable signal applies after Stable
// consecutive ticks; the cooldown blocks the next switch; and switching back
// to the engine just abandoned is blocked for 4×Cooldown even when its
// signal is otherwise stable.
func TestAutoTunerAppliesStableSignal(t *testing.T) {
	opts := AutoTunerOptions{Interval: time.Second, Stable: 2, Cooldown: 4 * time.Second}
	tuner, c := scriptedTuner(t, opts, []string{"bst"})
	prev := c.ActiveEngineName()

	now := time.Unix(1000, 0)
	tuner.tick(now)
	if got := c.ActiveEngineName(); got != prev {
		t.Fatalf("one tick must not satisfy Stable=2, but engine switched to %q", got)
	}
	tuner.tick(now.Add(opts.Interval))
	if got := c.ActiveEngineName(); got != "bst" {
		t.Fatalf("stable signal after %d ticks: engine = %q, want bst", opts.Stable, got)
	}
	if applied := tuner.Applied(); len(applied) != 1 || applied[0].Engine != "bst" {
		t.Fatalf("Applied() = %v, want exactly the bst switch", applied)
	}

	// A new stable target inside the cooldown window must wait.
	i := 0
	tuner.advise = func() ([]Recommendation, error) {
		i++
		return []Recommendation{{Kind: KindEngine, Engine: "hypercuts", Score: 0.5}}, nil
	}
	tuner.tick(now.Add(2 * opts.Interval))
	tuner.tick(now.Add(3 * opts.Interval))
	if got := c.ActiveEngineName(); got != "bst" {
		t.Fatalf("cooldown violated: engine switched to %q %v after the last apply", got, 2*opts.Interval)
	}
	// Outside the cooldown the same stable target applies.
	after := now.Add(opts.Interval + opts.Cooldown)
	tuner.tick(after)
	tuner.tick(after.Add(opts.Interval))
	if got := c.ActiveEngineName(); got != "hypercuts" {
		t.Fatalf("stable post-cooldown signal: engine = %q, want hypercuts", got)
	}

	// bst was just abandoned: a stable bst signal inside 4×Cooldown must not
	// ping-pong back.
	tuner.advise = func() ([]Recommendation, error) {
		return []Recommendation{{Kind: KindEngine, Engine: "bst", Score: 0.5}}, nil
	}
	base := after.Add(opts.Interval + opts.Cooldown) // past the apply cooldown
	for i := 0; i < 3; i++ {
		tuner.tick(base.Add(time.Duration(i) * opts.Interval))
	}
	if got := c.ActiveEngineName(); got != "hypercuts" {
		t.Fatalf("switch-back suppression violated: engine ping-ponged to %q", got)
	}
	// After the switch-back window expires, bst may win again.
	late := after.Add(opts.Interval + 4*opts.Cooldown)
	tuner.tick(late)
	tuner.tick(late.Add(opts.Interval))
	if got := c.ActiveEngineName(); got != "bst" {
		t.Fatalf("expired switch-back window: engine = %q, want bst", got)
	}
}

// TestAutoTunerAppliesPolicy verifies update-policy recommendations apply
// immediately (no Stable requirement) but rate-limit on the cooldown.
func TestAutoTunerAppliesPolicy(t *testing.T) {
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := AutoTunerOptions{Interval: time.Second, Stable: 2, Cooldown: 4 * time.Second}
	tuner := NewAutoTuner(c, opts)
	tuner.advise = func() ([]Recommendation, error) {
		return []Recommendation{{Kind: KindUpdatePolicy, RebuildAfterDeltas: 64, Score: 0.4}}, nil
	}

	now := time.Unix(2000, 0)
	tuner.tick(now)
	if got := c.Config().RebuildAfterDeltas; got != 64 {
		t.Fatalf("RebuildAfterDeltas = %d, want 64 applied on the first tick", got)
	}
	tuner.tick(now.Add(opts.Interval)) // inside cooldown: must not re-apply
	if applied := tuner.Applied(); len(applied) != 1 {
		t.Fatalf("policy applies must rate-limit on cooldown, got %d", len(applied))
	}
}

// TestAutoTunerLiveStorm runs a real tuner at a tiny interval against a
// concurrent update storm and lookup flood — the -race pin that the control
// plane's engine/policy switches are safe against live traffic.
func TestAutoTunerLiveStorm(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SampleHeaders = 512
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 300, Seed: 3})
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 512, Seed: 3})
	updates := classbench.GenerateUpdateTrace(rs, classbench.UpdateTraceConfig{Ops: 400, Seed: 4})

	tuner := NewAutoTuner(c, AutoTunerOptions{
		Interval: 2 * time.Millisecond,
		Stable:   1,
		Cooldown: time.Millisecond,
		Advisor: Options{
			Candidates: []string{"mbt", "bst", "hypercuts"},
			Budget:     5 * time.Millisecond,
			MaxRules:   300,
			MaxHeaders: 128,
		},
	})
	tuner.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // update storm
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			op := updates[i%len(updates)]
			if op.Delete {
				c.DeleteRule(op.Rule)
			} else {
				c.InsertRule(op.Rule)
			}
		}
	}()
	go func() { // lookup flood
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Lookup(trace[i%len(trace)])
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	tuner.Stop()
	tuner.Stop() // idempotent

	// The classifier must still answer after the storm.
	if res := c.Lookup(trace[0]); res.Matched && res.Priority < 0 {
		t.Fatalf("implausible result after storm: %+v", res)
	}
}
