package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// RecordSchema identifies the persisted benchmark-record format. Bump it
// when a reader-visible field changes shape; readers reject records of any
// other schema rather than misinterpreting them.
const RecordSchema = "sdnpc-bench/v1"

// Record is one persisted benchmark artifact — the BENCH_<date>_<host>.json
// file the sweep driver writes at the repo root. It captures everything a
// later consumer (the advisor seeding engine rankings, the CI benchgate, a
// human reading the perf trajectory across PRs) needs to interpret the
// numbers: the workload configuration, the environment they were measured
// on, and one metrics map per (experiment, engine) cell.
type Record struct {
	Schema      string            `json:"schema"`
	Date        string            `json:"date"` // YYYY-MM-DD, UTC
	Host        string            `json:"host"`
	Environment RecordEnvironment `json:"environment"`
	Config      RecordConfig      `json:"config"`
	Results     []RecordResult    `json:"results"`
}

// RecordEnvironment pins the machine the record was measured on.
type RecordEnvironment struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// RecordConfig is the workload the sweeps ran against.
type RecordConfig struct {
	// Class and Size name the ClassBench filter set ("acl"/"fw"/"ipc",
	// "1k"/"5k"/"10k"); Rules is the generated rule count.
	Class string `json:"class"`
	Size  string `json:"size"`
	Rules int    `json:"rules"`
	// Packets is the replayed trace length.
	Packets int `json:"packets"`
}

// RecordResult is one measured cell: an engine evaluated under one
// experiment, with every metric in a flat name → value map so the schema
// never has to change when a sweep grows a column.
type RecordResult struct {
	// Experiment is "engines", "throughput" or "updates".
	Experiment string `json:"experiment"`
	Engine     string `json:"engine"`
	// Tier is "field" or "packet" for engine rows, the update mode for
	// update rows, empty elsewhere.
	Tier    string             `json:"tier,omitempty"`
	Rules   int                `json:"rules"`
	Metrics map[string]float64 `json:"metrics"`
}

// NewRecord builds an empty record stamped with the current date, host and
// environment.
func NewRecord(cfg RecordConfig) *Record {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	return &Record{
		Schema: RecordSchema,
		Date:   time.Now().UTC().Format("2006-01-02"),
		Host:   host,
		Environment: RecordEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Config: cfg,
	}
}

// AddEngineRows folds an engine sweep into the record.
func (r *Record) AddEngineRows(rows []EngineRow) {
	for _, row := range rows {
		r.Results = append(r.Results, RecordResult{
			Experiment: "engines",
			Engine:     row.Engine,
			Tier:       row.Tier,
			Rules:      r.Config.Rules,
			Metrics: map[string]float64{
				"accesses_per_packet": row.AvgFieldAccesses,
				"latency_cycles":      row.AvgLatencyCycles,
				"mlookups_per_sec":    row.LookupsPerSecMega,
				"gbps_40b":            row.ThroughputGbps40,
				"engine_memory_kbit":  row.EngineMemoryKbit,
				"provisioned_kbit":    row.ProvisionedKbit,
				"rule_capacity":       float64(row.RuleCapacity),
				"mismatches":          float64(row.VerdictMismatches),
				"packets":             float64(row.PacketsReplayed),
			},
		})
	}
}

// AddThroughputRows folds a throughput sweep into the record.
func (r *Record) AddThroughputRows(rows []ThroughputRow) {
	for _, row := range rows {
		res := RecordResult{
			Experiment: "throughput",
			Engine:     row.Engine,
			Rules:      r.Config.Rules,
			Metrics: map[string]float64{
				"workers":         float64(row.Workers),
				"batch":           float64(row.BatchSize),
				"packets_per_sec": row.PacketsPerSec,
				"p50_ns":          float64(row.P50PerPacket.Nanoseconds()),
				"p99_ns":          float64(row.P99PerPacket.Nanoseconds()),
				"speedup_vs_1":    row.SpeedupVs1,
				"replicas":        float64(row.Replicas),
			},
		}
		if row.Cached {
			res.Metrics["cache_hit_rate"] = row.CacheHitRate
		}
		r.Results = append(r.Results, res)
	}
}

// AddUpdateRows folds an update sweep into the record.
func (r *Record) AddUpdateRows(rows []UpdateSweepRow) {
	for _, row := range rows {
		r.Results = append(r.Results, RecordResult{
			Experiment: "updates",
			Engine:     row.Engine,
			Tier:       row.Mode,
			Rules:      r.Config.Rules,
			Metrics: map[string]float64{
				"ops":             float64(row.Ops),
				"update_p50_ns":   float64(row.UpdateP50.Nanoseconds()),
				"update_p99_ns":   float64(row.UpdateP99.Nanoseconds()),
				"updates_per_sec": row.UpdatesPerSec,
				"lookups_per_sec": row.LookupsPerSec,
				"deltas_applied":  float64(row.DeltasApplied),
				"rebuilds":        float64(row.Rebuilds),
			},
		})
	}
}

// Validate checks the record against the schema contract the readers rely
// on.
func (r *Record) Validate() error {
	if r.Schema != RecordSchema {
		return fmt.Errorf("bench: record schema %q, want %q", r.Schema, RecordSchema)
	}
	if _, err := time.Parse("2006-01-02", r.Date); err != nil {
		return fmt.Errorf("bench: record date %q is not YYYY-MM-DD: %w", r.Date, err)
	}
	if r.Host == "" {
		return fmt.Errorf("bench: record has no host")
	}
	if r.Environment.GoVersion == "" || r.Environment.NumCPU < 1 {
		return fmt.Errorf("bench: record environment incomplete: %+v", r.Environment)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("bench: record holds no results")
	}
	for i, res := range r.Results {
		if res.Experiment == "" || res.Engine == "" {
			return fmt.Errorf("bench: result %d missing experiment or engine: %+v", i, res)
		}
		if len(res.Metrics) == 0 {
			return fmt.Errorf("bench: result %d (%s/%s) has no metrics", i, res.Experiment, res.Engine)
		}
	}
	return nil
}

// FileName returns the canonical artifact name, BENCH_<date>_<host>.json.
// The date-first layout makes lexical order chronological, which is what
// LatestRecord sorts by.
func (r *Record) FileName() string {
	host := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
			return c
		default:
			return '-'
		}
	}, r.Host)
	return fmt.Sprintf("BENCH_%s_%s.json", r.Date, host)
}

// Write validates the record and persists it under dir with its canonical
// file name, returning the written path.
func (r *Record) Write(dir string) (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encoding record: %w", err)
	}
	path := filepath.Join(dir, r.FileName())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: writing record: %w", err)
	}
	return path, nil
}

// ReadRecord loads and validates one persisted record.
func ReadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading record: %w", err)
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: decoding record %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// LatestRecord finds the newest BENCH_*.json under dir (lexically last,
// which the date-first file name makes chronological) and loads it. A
// directory holding no records returns os.ErrNotExist.
func LatestRecord(dir string) (*Record, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", fmt.Errorf("bench: globbing records: %w", err)
	}
	if len(paths) == 0 {
		return nil, "", fmt.Errorf("bench: no BENCH_*.json under %s: %w", dir, os.ErrNotExist)
	}
	sort.Strings(paths)
	path := paths[len(paths)-1]
	r, err := ReadRecord(path)
	if err != nil {
		return nil, "", err
	}
	return r, path, nil
}

// LookupNs returns the persisted single-worker lookup cost of the named
// engine in nanoseconds per packet, derived from the engine-sweep cell. This
// is the record signal the advisor falls back on for a candidate whose
// shadow bench could not run.
func (r *Record) LookupNs(engine string) (float64, bool) {
	for _, res := range r.Results {
		if res.Experiment != "engines" || res.Engine != engine {
			continue
		}
		if m := res.Metrics["mlookups_per_sec"]; m > 0 {
			return 1e3 / m, true
		}
	}
	return 0, false
}
