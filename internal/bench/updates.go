package bench

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/label"
)

// UpdateSweepOptions parameterises the churn driver.
type UpdateSweepOptions struct {
	// Engines restricts the sweep to the named engines; empty means every
	// selectable engine of both tiers. Incremental packet engines run once
	// per update mode, non-incremental ones run a single "rebuild" cell, and
	// field engines (no packet structure to rebuild) run once as "field".
	Engines []string
	// Ops is the churn-trace length per cell; <= 0 selects 2000.
	Ops int
	// Readers is the number of goroutines flooding lookups while the writer
	// churns; <= 0 selects 2. The measured lookup throughput is what the
	// serving path sustains *under* churn, not in isolation.
	Readers int
	// OpsPerSecond paces the writer (the churn rate); <= 0 applies the trace
	// at full speed, which is how update latency is usually measured.
	OpsPerSecond float64
	// InsertFraction and Locality shape the generated churn trace (see
	// classbench.UpdateTraceConfig).
	InsertFraction float64
	Locality       float64
	// Seed makes the churn trace deterministic; 0 selects 42.
	Seed int64
}

// updateModes names the two packet-tier update policies the sweep compares:
// the delta-apply path under the default amortisation policy, and the
// rebuild-every-publish baseline (RebuildAfterDeltas = 1).
var updateModes = []string{"delta", "rebuild"}

// UpdateSweepRow is one measured cell of the churn sweep.
type UpdateSweepRow struct {
	Engine string
	// Mode is "delta" or "rebuild" for packet engines, "field" for field
	// engines (updated in place per label, no structure to rebuild).
	Mode string
	// Ops is the number of update ops applied (failed ops are skipped and
	// not counted).
	Ops int
	// UpdateP50 and UpdateP99 are wall-clock per-publish latency quantiles;
	// UpdatesPerSec is the sustained publish rate.
	UpdateP50     time.Duration
	UpdateP99     time.Duration
	UpdatesPerSec float64
	// LookupsPerSec is the concurrent reader throughput sustained while the
	// writer churned.
	LookupsPerSec float64
	// DeltasApplied and Rebuilds are the classifier's update-plane counters
	// after the storm.
	DeltasApplied uint64
	Rebuilds      uint64
}

// UpdateSweep measures the write side under churn: for every selected engine
// (and, for packet engines, every update mode) it installs the workload's
// rule set, generates one shared churn trace, then applies it op by op
// through InsertRule/DeleteRule while Readers goroutines flood lookups
// against the same classifier. Update latency is measured per publish
// wall-clock; lookup throughput is what the readers actually sustained
// during the storm.
func UpdateSweep(w Workload, opts UpdateSweepOptions) ([]UpdateSweepRow, error) {
	engines := opts.Engines
	if len(engines) == 0 {
		engines = engine.SelectableNames()
	}
	ops := opts.Ops
	if ops <= 0 {
		ops = 2000
	}
	readers := opts.Readers
	if readers <= 0 {
		readers = 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	trace := classbench.GenerateUpdateTrace(w.RuleSet, classbench.UpdateTraceConfig{
		Ops: ops, Seed: seed, InsertFraction: opts.InsertFraction, Locality: opts.Locality,
	})

	var rows []UpdateSweepRow
	for _, name := range engines {
		isPacket, ok := engine.Selectable(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown engine %q (selectable: %v)", name, engine.SelectableNames())
		}
		modes := []string{"field"}
		if isPacket {
			// A non-incremental packet engine has no delta path: its "delta"
			// cell would rebuild every publish exactly like "rebuild" under a
			// wrong label (and double the slowest cells of the sweep).
			if def, _ := engine.Get(name); def.Incremental {
				modes = updateModes
			} else {
				modes = []string{"rebuild"}
			}
		}
		for _, mode := range modes {
			cfg := EngineConfig(name)
			if mode == "rebuild" {
				cfg.RebuildAfterDeltas = 1
			}
			row, err := runUpdateCell(cfg, name, mode, w, trace, readers, opts.OpsPerSecond)
			if err != nil {
				return nil, fmt.Errorf("bench: churn %s/%s: %w", name, mode, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runUpdateCell drives one (engine, mode) cell of the churn sweep.
func runUpdateCell(cfg core.Config, name, mode string, w Workload, trace []classbench.UpdateOp, readers int, pace float64) (UpdateSweepRow, error) {
	c, err := core.New(cfg)
	if err != nil {
		return UpdateSweepRow{}, err
	}
	if _, err := c.InstallRuleSet(w.RuleSet); err != nil {
		return UpdateSweepRow{}, err
	}
	c.ResetStats()

	done := make(chan struct{})
	var lookups atomic.Uint64
	var wg sync.WaitGroup
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(pos int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				c.Lookup(w.Trace[pos%len(w.Trace)])
				lookups.Add(1)
				pos++
			}
		}(ri * len(w.Trace) / readers)
	}

	var interval time.Duration
	if pace > 0 {
		interval = time.Duration(float64(time.Second) / pace)
	}
	latencies := make([]time.Duration, 0, len(trace))
	applied := 0
	start := time.Now()
	next := start
	for _, op := range trace {
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		t0 := time.Now()
		if op.Delete {
			_, err = c.DeleteRule(op.Rule)
		} else {
			_, err = c.InsertRule(op.Rule)
		}
		if err != nil {
			// Capacity overflows (rule filter or a dimension's label budget)
			// and duplicate deletes are workload noise, not measurement
			// failures; anything else aborts the cell.
			if errors.Is(err, core.ErrRuleFilterFull) || errors.Is(err, core.ErrRuleNotInstalled) ||
				errors.Is(err, label.ErrTableFull) {
				continue
			}
			close(done)
			wg.Wait()
			return UpdateSweepRow{}, err
		}
		latencies = append(latencies, time.Since(t0))
		applied++
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(q*float64(len(latencies)-1))]
	}
	stats := c.Report().Updates
	row := UpdateSweepRow{
		Engine:        name,
		Mode:          mode,
		Ops:           applied,
		UpdateP50:     quantile(0.50),
		UpdateP99:     quantile(0.99),
		DeltasApplied: stats.DeltasApplied,
		Rebuilds:      stats.Rebuilds,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		row.UpdatesPerSec = float64(applied) / sec
		row.LookupsPerSec = float64(lookups.Load()) / sec
	}
	return row, nil
}

// RenderUpdateSweep renders the churn sweep as a table.
func RenderUpdateSweep(rows []UpdateSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Update-plane churn sweep — per-publish latency and concurrent lookup throughput\n")
	fmt.Fprintf(&b, "%-10s %8s %6s %12s %12s %12s %14s %8s %9s\n",
		"engine", "mode", "ops", "update p50", "update p99", "updates/s", "lookups/s", "deltas", "rebuilds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8s %6d %12s %12s %12.0f %14.0f %8d %9d\n",
			r.Engine, r.Mode, r.Ops, r.UpdateP50, r.UpdateP99, r.UpdatesPerSec,
			r.LookupsPerSec, r.DeltasApplied, r.Rebuilds)
	}
	return b.String()
}
