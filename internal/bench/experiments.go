package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"sdnpc/internal/algo/dcfl"
	"sdnpc/internal/algo/hypercuts"
	"sdnpc/internal/algo/portreg"
	"sdnpc/internal/algo/rfc"
	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/hw/synth"
	"sdnpc/internal/label"
)

// Mbit converts bits to the megabit figures used by Tables I and VII.
func Mbit(bits int) float64 { return float64(bits) / (1 << 20) }

// Kbit converts bits to the kilobit figures used by Table VI.
func Kbit(bits int) float64 { return float64(bits) / 1024 }

// renderTable renders rows with a tab writer; every row is a slice of cells.
func renderTable(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	_ = w.Flush()
	return sb.String()
}

// Workload is a generated filter set plus header trace shared by several
// experiments.
type Workload struct {
	RuleSet *fivetuple.RuleSet
	Trace   []fivetuple.Header
}

// NewWorkload generates the evaluation workload: an acl1-style filter set of
// the given size and a ClassBench-style trace of matching headers.
func NewWorkload(class classbench.Class, size classbench.Size, packets int) Workload {
	rs := classbench.Generate(classbench.StandardConfig(class, size))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: packets, Seed: 99, MatchFraction: 0.9, Locality: 0.3,
	})
	return Workload{RuleSet: rs, Trace: trace}
}

// NewZipfWorkload generates the same filter set as NewWorkload but replays a
// fixed flow population with Zipf(skew)-ranked popularity — the
// repeated-five-tuple traffic shape whose hit rate the microflow cache
// converts into throughput. skew must be > 1; 1.1 is a realistic heavy tail.
func NewZipfWorkload(class classbench.Class, size classbench.Size, packets int, skew float64) Workload {
	rs := classbench.Generate(classbench.StandardConfig(class, size))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: packets, Seed: 99, MatchFraction: 0.9, Locality: 0.3, ZipfSkew: skew,
	})
	return Workload{RuleSet: rs, Trace: trace}
}

// ---------------------------------------------------------------------------
// Table I — lookup performance of algorithm approaches
// ---------------------------------------------------------------------------

// Table1Row is one row of Table I.
type Table1Row struct {
	Algorithm     string
	AvgAccesses   float64
	MemorySpaceMb float64
	PaperAccesses float64
	PaperMemoryMb float64
}

// Table1 measures the average lookup memory accesses and memory space of
// HyperCuts, RFC, DCFL and the Option 1/2 single-field combinations on the
// given workload, alongside the values the paper reports.
func Table1(w Workload) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 5)

	hc, err := hypercuts.Build(w.RuleSet, hypercuts.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var hcAccesses uint64
	for _, h := range w.Trace {
		_, _, a := hc.Classify(h)
		hcAccesses += uint64(a)
	}
	rows = append(rows, Table1Row{
		Algorithm: "HyperCuts", AvgAccesses: float64(hcAccesses) / float64(len(w.Trace)),
		MemorySpaceMb: Mbit(hc.MemoryBits()), PaperAccesses: 60.05, PaperMemoryMb: 5.96,
	})

	rfcClassifier, err := rfc.Build(w.RuleSet)
	if err != nil {
		return nil, err
	}
	var rfcAccesses uint64
	for _, h := range w.Trace {
		_, _, a := rfcClassifier.Classify(h)
		rfcAccesses += uint64(a)
	}
	rows = append(rows, Table1Row{
		Algorithm: "RFC", AvgAccesses: float64(rfcAccesses) / float64(len(w.Trace)),
		MemorySpaceMb: Mbit(rfcClassifier.MemoryBits()), PaperAccesses: 48, PaperMemoryMb: 31.48,
	})

	dcflClassifier, err := dcfl.Build(w.RuleSet)
	if err != nil {
		return nil, err
	}
	var dcflAccesses uint64
	for _, h := range w.Trace {
		_, _, a := dcflClassifier.Classify(h)
		dcflAccesses += uint64(a)
	}
	rows = append(rows, Table1Row{
		Algorithm: "DCFL", AvgAccesses: float64(dcflAccesses) / float64(len(w.Trace)),
		MemorySpaceMb: Mbit(dcflClassifier.MemoryBits()), PaperAccesses: 23.1, PaperMemoryMb: 22.54,
	})

	for _, opt := range []struct {
		cfg           OptionConfig
		paperAccesses float64
		paperMemoryMb float64
	}{
		{Option1(), 49.3, 5.57},
		{Option2(), 31.33, 6.36},
	} {
		oc, err := buildOption(opt.cfg, w.RuleSet)
		if err != nil {
			return nil, err
		}
		var accesses uint64
		for _, h := range w.Trace {
			_, _, a := oc.classify(h)
			accesses += uint64(a)
		}
		rows = append(rows, Table1Row{
			Algorithm: opt.cfg.Name, AvgAccesses: float64(accesses) / float64(len(w.Trace)),
			MemorySpaceMb: Mbit(oc.memoryBits()), PaperAccesses: opt.paperAccesses, PaperMemoryMb: opt.paperMemoryMb,
		})
	}
	return rows, nil
}

// RenderTable1 renders Table I rows.
func RenderTable1(rows []Table1Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Algorithm,
			fmt.Sprintf("%.2f", r.AvgAccesses), fmt.Sprintf("%.2f", r.MemorySpaceMb),
			fmt.Sprintf("%.2f", r.PaperAccesses), fmt.Sprintf("%.2f", r.PaperMemoryMb),
		})
	}
	return renderTable("Table I — lookup performance of algorithm approaches",
		[]string{"Algorithm", "Avg accesses", "Memory (Mb)", "Paper accesses", "Paper memory (Mb)"}, out)
}

// ---------------------------------------------------------------------------
// Table II — unique rule fields per rule set
// ---------------------------------------------------------------------------

// Table2Row is one column of Table II (one acl1 filter-set size).
type Table2Row struct {
	Name        string
	Rules       int
	UniqueCount map[fivetuple.Field]int
	PaperCount  map[fivetuple.Field]int
}

// Table2 generates the three acl1 filter sets and counts the unique field
// values per dimension.
func Table2() []Table2Row {
	rows := make([]Table2Row, 0, 3)
	for _, size := range []classbench.Size{classbench.Size1K, classbench.Size5K, classbench.Size10K} {
		rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, size))
		counts := make(map[fivetuple.Field]int, fivetuple.NumFields)
		for _, f := range fivetuple.Fields() {
			counts[f] = rs.UniqueFieldCount(f)
		}
		paper, _ := classbench.UniqueFieldTargets(classbench.ACL, size)
		rows = append(rows, Table2Row{
			Name: fmt.Sprintf("acl1 %s (%d rules)", size, rs.Len()), Rules: rs.Len(),
			UniqueCount: counts, PaperCount: paper,
		})
	}
	return rows
}

// RenderTable2 renders Table II rows.
func RenderTable2(rows []Table2Row) string {
	out := make([][]string, 0, fivetuple.NumFields)
	for _, f := range fivetuple.Fields() {
		cells := []string{f.String()}
		for _, r := range rows {
			cells = append(cells, fmt.Sprintf("%d (paper %d)", r.UniqueCount[f], r.PaperCount[f]))
		}
		out = append(out, cells)
	}
	header := []string{"Packet header field"}
	for _, r := range rows {
		header = append(header, r.Name)
	}
	return renderTable("Table II — number of unique rule fields per rule set", header, out)
}

// ---------------------------------------------------------------------------
// Table III — analysis of rule filters
// ---------------------------------------------------------------------------

// Table3Row is one row of Table III.
type Table3Row struct {
	Class    classbench.Class
	Rules1K  int
	Rules5K  int
	Rules10K int
	Paper1K  int
	Paper5K  int
	Paper10K int
}

// Table3 generates every filter-set family and size and reports the rule
// counts.
func Table3() []Table3Row {
	rows := make([]Table3Row, 0, 3)
	for _, class := range []classbench.Class{classbench.ACL, classbench.FW, classbench.IPC} {
		row := Table3Row{
			Class:    class,
			Paper1K:  classbench.RuleCount(class, classbench.Size1K),
			Paper5K:  classbench.RuleCount(class, classbench.Size5K),
			Paper10K: classbench.RuleCount(class, classbench.Size10K),
		}
		row.Rules1K = classbench.Generate(classbench.StandardConfig(class, classbench.Size1K)).Len()
		row.Rules5K = classbench.Generate(classbench.StandardConfig(class, classbench.Size5K)).Len()
		row.Rules10K = classbench.Generate(classbench.StandardConfig(class, classbench.Size10K)).Len()
		rows = append(rows, row)
	}
	return rows
}

// RenderTable3 renders Table III rows.
func RenderTable3(rows []Table3Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strings.ToUpper(r.Class.String()),
			fmt.Sprintf("%d (paper %d)", r.Rules1K, r.Paper1K),
			fmt.Sprintf("%d (paper %d)", r.Rules5K, r.Paper5K),
			fmt.Sprintf("%d (paper %d)", r.Rules10K, r.Paper10K),
		})
	}
	return renderTable("Table III — analysis of rule filters",
		[]string{"Filter type", "1K rules", "5K rules", "10K rules"}, out)
}

// ---------------------------------------------------------------------------
// Table IV — port field labelling example
// ---------------------------------------------------------------------------

// Table4Result captures the Table IV example and the resulting label order
// for destination port 7812.
type Table4Result struct {
	Ranges     []fivetuple.PortRange
	Labels     []string
	LabelOrder []string
}

// Table4 reproduces the worked example of §IV.C.1: three port rules labelled
// A, B and C, and the lookup of port 7812 returning the order B, C, A.
func Table4() (Table4Result, error) {
	bank := portreg.Default()
	ranges := []fivetuple.PortRange{
		{Lo: 0, Hi: 65355},
		{Lo: 7812, Hi: 7812},
		{Lo: 7810, Hi: 7820},
	}
	names := []string{"A", "B", "C"}
	for i, rng := range ranges {
		if _, err := bank.Insert(rng, label.Label(i), i); err != nil {
			return Table4Result{}, err
		}
	}
	list, _ := bank.Lookup(7812)
	order := make([]string, 0, list.Len())
	for _, lbl := range list.Labels() {
		order = append(order, names[lbl])
	}
	return Table4Result{Ranges: ranges, Labels: names, LabelOrder: order}, nil
}

// RenderTable4 renders the Table IV example.
func RenderTable4(r Table4Result) string {
	out := make([][]string, 0, len(r.Ranges))
	for i, rng := range r.Ranges {
		method := "Range matching"
		if rng.IsExact() {
			method = "Exact matching"
		}
		out = append(out, []string{
			fmt.Sprintf("[%d - %d]", rng.Hi, rng.Lo), r.Labels[i], method,
		})
	}
	s := renderTable("Table IV — example of port field and labelling",
		[]string{"Port field rule (high-low)", "Label", "Match method"}, out)
	return s + fmt.Sprintf("Lookup of destination port 7812 returns labels in order: %s (paper: B, C, A)\n",
		strings.Join(r.LabelOrder, ", "))
}

// ---------------------------------------------------------------------------
// Table V — synthesis result
// ---------------------------------------------------------------------------

// Table5Result pairs the estimated synthesis report with the paper's values.
type Table5Result struct {
	Report synth.Report

	PaperLogic      int
	PaperMemoryBits int
	PaperRegisters  int
	PaperFmaxMHz    float64
	PaperPins       int
}

// Table5 estimates the FPGA resources of the default architecture geometry.
func Table5() (Table5Result, error) {
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		return Table5Result{}, err
	}
	report, err := c.Synthesise()
	if err != nil {
		return Table5Result{}, err
	}
	return Table5Result{
		Report:          report,
		PaperLogic:      79835,
		PaperMemoryBits: 2097184,
		PaperRegisters:  129273,
		PaperFmaxMHz:    133.51,
		PaperPins:       500,
	}, nil
}

// RenderTable5 renders Table V.
func RenderTable5(r Table5Result) string {
	rows := [][]string{
		{"Logical utilization (ALMs)", fmt.Sprintf("%d / %d", r.Report.LogicALMs, r.Report.Device.ALMs), fmt.Sprintf("%d / 225,400", r.PaperLogic)},
		{"Total block memory bits", fmt.Sprintf("%d / %d", r.Report.BlockMemoryBits, r.Report.Device.BlockMemoryBits), fmt.Sprintf("%d / 54,476,800", r.PaperMemoryBits)},
		{"Total registers", fmt.Sprintf("%d", r.Report.Registers), fmt.Sprintf("%d", r.PaperRegisters)},
		{"Maximum frequency (MHz)", fmt.Sprintf("%.2f", r.Report.FmaxMHz), fmt.Sprintf("%.2f", r.PaperFmaxMHz)},
		{"Total number of pins", fmt.Sprintf("%d / %d", r.Report.Pins, r.Report.Device.Pins), fmt.Sprintf("%d / 908", r.PaperPins)},
	}
	return renderTable("Table V — synthesis result on Altera Stratix V (5SGXMB6R3F43C4)",
		[]string{"Resource", "Measured (model)", "Paper"}, rows)
}

// ---------------------------------------------------------------------------
// Table VI — performance evaluation for the IP algorithm
// ---------------------------------------------------------------------------

// Table6Row is one row of Table VI.
type Table6Row struct {
	Algorithm             memory.AlgSelect
	AccessesPerPacket     int // the provisioned per-packet figure of the paper
	MeasuredAvgIPAccesses float64
	MemorySpaceKbit       float64
	StoredRuleCapacity    int

	PaperAccesses int
	PaperKbit     float64
	PaperRules    int
}

// Table6 installs the workload under both IP algorithm selections and
// reports the per-packet accesses, the used IP-algorithm memory and the rule
// capacity.
func Table6(w Workload) ([]Table6Row, error) {
	rows := make([]Table6Row, 0, 2)
	paper := map[memory.AlgSelect]Table6Row{
		memory.SelectMBT: {PaperAccesses: 1, PaperKbit: 543, PaperRules: 8000},
		memory.SelectBST: {PaperAccesses: 16, PaperKbit: 49, PaperRules: 12000},
	}
	for _, alg := range []memory.AlgSelect{memory.SelectMBT, memory.SelectBST} {
		cfg := core.DefaultConfig()
		cfg.IPAlgorithm = alg
		c, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := c.InstallRuleSet(w.RuleSet); err != nil {
			return nil, err
		}
		var ipAccesses uint64
		for _, h := range w.Trace {
			res := c.Lookup(h)
			// Per-field accesses include the port and protocol engines (3 of
			// them at 1 access each); subtract to isolate the IP engines.
			ipAccesses += uint64(res.FieldAccesses - 3)
		}
		report := c.Report().Memory
		row := Table6Row{
			Algorithm:             alg,
			AccessesPerPacket:     c.Pipeline().BottleneckInterval(),
			MeasuredAvgIPAccesses: float64(ipAccesses) / float64(len(w.Trace)) / 4, // per segment engine
			MemorySpaceKbit:       Kbit(report.IPAlgorithmUsedBits()),
			StoredRuleCapacity:    c.RuleCapacity(),
			PaperAccesses:         paper[alg].PaperAccesses,
			PaperKbit:             paper[alg].PaperKbit,
			PaperRules:            paper[alg].PaperRules,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable6 renders Table VI.
func RenderTable6(rows []Table6Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Algorithm.String(),
			fmt.Sprintf("%d (paper %d)", r.AccessesPerPacket, r.PaperAccesses),
			fmt.Sprintf("%.1f", r.MeasuredAvgIPAccesses),
			fmt.Sprintf("%.0f Kbit (paper %.0f)", r.MemorySpaceKbit, r.PaperKbit),
			fmt.Sprintf("%d (paper %d)", r.StoredRuleCapacity, r.PaperRules),
		})
	}
	return renderTable("Table VI — performance evaluation for the IP algorithm",
		[]string{"IP lookup algorithm", "Accesses per packet", "Avg accesses per segment (measured)", "Memory space required", "Stored rules"}, out)
}

// ---------------------------------------------------------------------------
// Table VII — hardware comparison
// ---------------------------------------------------------------------------

// Table7Row is one row of Table VII.
type Table7Row struct {
	Algorithm      string
	MemorySpaceMb  float64
	StoredRules    int
	ThroughputGbps float64
	Source         string // "measured" or "literature"
}

// Table7 reports the architecture's two configurations (measured on this
// model) next to the published comparator rows the paper quotes.
func Table7() ([]Table7Row, error) {
	rows := make([]Table7Row, 0, 4)
	for _, alg := range []memory.AlgSelect{memory.SelectMBT, memory.SelectBST} {
		cfg := core.DefaultConfig()
		cfg.IPAlgorithm = alg
		c, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		report := c.Report().Memory
		rows = append(rows, Table7Row{
			Algorithm:      "Our system with " + alg.String(),
			MemorySpaceMb:  Mbit(report.TotalProvisionedBits()),
			StoredRules:    c.RuleCapacity(),
			ThroughputGbps: c.ThroughputGbps(40),
			Source:         "measured",
		})
	}
	rows = append(rows,
		Table7Row{Algorithm: "Optimizing HyperCuts FPGA [9]", MemorySpaceMb: 4.90, StoredRules: 10000, ThroughputGbps: 80.23, Source: "literature"},
		Table7Row{Algorithm: "DCFLE [4]", MemorySpaceMb: 1.77, StoredRules: 128, ThroughputGbps: 16, Source: "literature"},
	)
	return rows, nil
}

// RenderTable7 renders Table VII.
func RenderTable7(rows []Table7Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Algorithm, fmt.Sprintf("%.2f", r.MemorySpaceMb), fmt.Sprintf("%d", r.StoredRules),
			fmt.Sprintf("%.2f", r.ThroughputGbps), r.Source,
		})
	}
	return renderTable("Table VII — performance comparison (40-byte packets)",
		[]string{"Algorithm", "Memory (Mb)", "Stored rules", "Throughput (Gbps)", "Source"}, out)
}

// ---------------------------------------------------------------------------
// Fig. 3 — lookup pipeline, Fig. 5 — memory sharing, §V.A — update cost
// ---------------------------------------------------------------------------

// Fig3Result captures the per-stage pipeline schedule under both algorithm
// selections.
type Fig3Result struct {
	MBTLatencyCycles int
	BSTLatencyCycles int
	MBTStages        []string
	BSTStages        []string
}

// Fig3 reproduces the lookup pipelining description of Fig. 3 and §V.B.
func Fig3() (Fig3Result, error) {
	var out Fig3Result
	for _, alg := range []memory.AlgSelect{memory.SelectMBT, memory.SelectBST} {
		cfg := core.DefaultConfig()
		cfg.IPAlgorithm = alg
		c, err := core.New(cfg)
		if err != nil {
			return Fig3Result{}, err
		}
		p := c.Pipeline()
		var stages []string
		for _, s := range p.Stages() {
			stages = append(stages, fmt.Sprintf("%s: %d cycle(s), II=%d", s.Name, s.LatencyCycles, s.InitiationInterval))
		}
		if alg == memory.SelectMBT {
			out.MBTLatencyCycles = p.LatencyCycles()
			out.MBTStages = stages
		} else {
			out.BSTLatencyCycles = p.LatencyCycles()
			out.BSTStages = stages
		}
	}
	return out, nil
}

// RenderFig3 renders the pipeline description.
func RenderFig3(r Fig3Result) string {
	var sb strings.Builder
	sb.WriteString("Fig. 3 — lookup process pipelining\n")
	sb.WriteString(fmt.Sprintf("MBT configuration (total latency %d cycles; paper: 6-cycle MBT + 1 label fetch + 2 result):\n", r.MBTLatencyCycles))
	for _, s := range r.MBTStages {
		sb.WriteString("  " + s + "\n")
	}
	sb.WriteString(fmt.Sprintf("BST configuration (total latency %d cycles):\n", r.BSTLatencyCycles))
	for _, s := range r.BSTStages {
		sb.WriteString("  " + s + "\n")
	}
	return sb.String()
}

// Fig5Result captures the memory-sharing consequence of the IPalg_s signal.
type Fig5Result struct {
	SharedBlockBits     int
	FreedMBTBits        int
	RuleCapacityMBT     int
	RuleCapacityBST     int
	ExtraRulesFromShare int
}

// Fig5 quantifies the shared-block scheme of §IV.C.2.
func Fig5() Fig5Result {
	cfg := core.DefaultConfig()
	return Fig5Result{
		SharedBlockBits:     4 * cfg.MBTLevel2Entries * core.DefaultMBTEntryBits,
		FreedMBTBits:        4 * (core.DefaultMBTLevel1Entries + cfg.MBTLevel3Entries) * core.DefaultMBTEntryBits,
		RuleCapacityMBT:     cfg.RuleCapacityFor("mbt"),
		RuleCapacityBST:     cfg.RuleCapacityFor("bst"),
		ExtraRulesFromShare: cfg.ExtraRuleCapacityBST(),
	}
}

// RenderFig5 renders the memory-sharing figures.
func RenderFig5(r Fig5Result) string {
	return fmt.Sprintf(
		"Fig. 5 — memory sharing (IPalg_s)\n"+
			"Shared MBT level-2 / BST block:  %d bits\n"+
			"MBT blocks freed when BST selected: %d bits\n"+
			"Rule capacity with MBT selected:  %d rules (paper 8K)\n"+
			"Rule capacity with BST selected:  %d rules (paper 12K, +%d from freed blocks)\n",
		r.SharedBlockBits, r.FreedMBTBits, r.RuleCapacityMBT, r.RuleCapacityBST, r.ExtraRulesFromShare)
}

// UpdateResult captures the §V.A update-cost experiment.
type UpdateResult struct {
	Rules                  int
	CyclesPerRule          int
	TotalEngineWrites      int
	AvgEngineWritesPerRule float64
	NewLabelRate           float64
}

// UpdateExperiment installs the workload rule by rule and reports the
// per-rule update cost.
func UpdateExperiment(w Workload) (UpdateResult, error) {
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		return UpdateResult{}, err
	}
	total := UpdateResult{Rules: w.RuleSet.Len(), CyclesPerRule: core.UpdateCyclesPerRule()}
	newLabels := 0
	// One ApplyUpdates batch keeps the per-rule reports while paying a
	// single snapshot clone; per-rule InsertRule would clone the whole data
	// path once per rule under the copy-on-write update model.
	rules := w.RuleSet.Rules()
	ops := make([]core.UpdateOp, len(rules))
	for i, r := range rules {
		ops[i] = core.UpdateOp{Rule: r}
	}
	reports, errs, err := c.ApplyUpdates(ops)
	if err != nil {
		return UpdateResult{}, err
	}
	for i, rep := range reports {
		if errs[i] != nil {
			return UpdateResult{}, errs[i]
		}
		total.TotalEngineWrites += rep.EngineWrites
		newLabels += rep.NewLabels
	}
	total.AvgEngineWritesPerRule = float64(total.TotalEngineWrites) / float64(total.Rules)
	total.NewLabelRate = float64(newLabels) / float64(total.Rules*label.NumDimensions)
	return total, nil
}

// RenderUpdate renders the update-cost experiment.
func RenderUpdate(r UpdateResult) string {
	return fmt.Sprintf(
		"§V.A — memory accesses for update\n"+
			"Rules installed:                   %d\n"+
			"Hardware upload cost per rule:     %d clock cycles (paper: 2 upload + 1 hash)\n"+
			"Average engine writes per rule:    %.2f (controller side, label method)\n"+
			"Fraction of field values needing a new label: %.1f%%\n",
		r.Rules, r.CyclesPerRule, r.AvgEngineWritesPerRule, 100*r.NewLabelRate)
}

// HPMLAccuracyResult quantifies how often the paper's single-probe
// combination returns the same verdict as the exact cross-product mode.
type HPMLAccuracyResult struct {
	Packets        int
	Agreement      float64
	HPMLMatchRate  float64
	ExactMatchRate float64
	AvgProbesExact float64
}

// HPMLAccuracy compares the two phase-3 combination modes on a workload.
func HPMLAccuracy(w Workload) (HPMLAccuracyResult, error) {
	build := func(mode core.CombineMode) (*core.Classifier, error) {
		cfg := core.DefaultConfig()
		cfg.CombineMode = mode
		c, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		_, err = c.InstallRuleSet(w.RuleSet)
		return c, err
	}
	hpml, err := build(core.CombineHPML)
	if err != nil {
		return HPMLAccuracyResult{}, err
	}
	exact, err := build(core.CombineCrossProduct)
	if err != nil {
		return HPMLAccuracyResult{}, err
	}
	result := HPMLAccuracyResult{Packets: len(w.Trace)}
	agree := 0
	for _, h := range w.Trace {
		a := hpml.Lookup(h)
		b := exact.Lookup(h)
		if a.Matched == b.Matched && (!a.Matched || a.Priority == b.Priority) {
			agree++
		}
	}
	result.Agreement = float64(agree) / float64(len(w.Trace))
	hpmlStats, exactStats := hpml.Report().Stats, exact.Report().Stats
	result.HPMLMatchRate = hpmlStats.MatchRate()
	result.ExactMatchRate = exactStats.MatchRate()
	result.AvgProbesExact = exactStats.AverageCombinations()
	return result, nil
}

// RenderHPMLAccuracy renders the combination-mode comparison.
func RenderHPMLAccuracy(r HPMLAccuracyResult) string {
	return fmt.Sprintf(
		"Combination-mode analysis (additional to the paper)\n"+
			"Packets:                             %d\n"+
			"HPML single-probe agreement with exact mode: %.1f%%\n"+
			"HPML match rate / exact match rate:  %.1f%% / %.1f%%\n"+
			"Average combinations probed (exact): %.2f\n",
		r.Packets, 100*r.Agreement, 100*r.HPMLMatchRate, 100*r.ExactMatchRate, r.AvgProbesExact)
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// LabelMethodAblation quantifies the storage saved by labelling unique field
// values instead of storing every rule's fields verbatim (§III.C claims the
// saving exceeds 50%).
type LabelMethodAblation struct {
	Rules              int
	RawFieldBits       int
	UniqueFieldBits    int
	LabelReferenceBits int
	// FieldSavingFraction is the saving on field storage alone (the paper's
	// ">50%" claim, which follows directly from the Table II unique counts).
	FieldSavingFraction float64
	// NetSavingFraction additionally charges the 68-bit label key every rule
	// must still store in the Rule Filter.
	NetSavingFraction float64
}

// LabelMethod computes the ablation for a rule set.
func LabelMethod(rs *fivetuple.RuleSet) LabelMethodAblation {
	// Without labels every rule stores its five field matches verbatim:
	// 2 prefixes (37 bits each), 2 ranges (32 bits each) and a protocol
	// match (16 bits) = 154 bits.
	const perRuleFieldBits = 2*37 + 2*32 + 16
	out := LabelMethodAblation{Rules: rs.Len(), RawFieldBits: rs.Len() * perRuleFieldBits}
	// With labels each unique field value is stored once...
	uniqueBits := 0
	uniqueBits += rs.UniqueFieldCount(fivetuple.FieldSrcIP) * 37
	uniqueBits += rs.UniqueFieldCount(fivetuple.FieldDstIP) * 37
	uniqueBits += rs.UniqueFieldCount(fivetuple.FieldSrcPort) * 32
	uniqueBits += rs.UniqueFieldCount(fivetuple.FieldDstPort) * 32
	uniqueBits += rs.UniqueFieldCount(fivetuple.FieldProtocol) * 16
	out.UniqueFieldBits = uniqueBits
	// ...and each rule references them through the 68-bit combination key.
	out.LabelReferenceBits = rs.Len() * label.KeyBits
	out.FieldSavingFraction = 1 - float64(out.UniqueFieldBits)/float64(out.RawFieldBits)
	out.NetSavingFraction = 1 - float64(out.UniqueFieldBits+out.LabelReferenceBits)/float64(out.RawFieldBits)
	return out
}

// RenderLabelMethod renders the label-method ablation.
func RenderLabelMethod(a LabelMethodAblation) string {
	return fmt.Sprintf(
		"Ablation — label method storage saving (§III.C)\n"+
			"Rules: %d\n"+
			"Field storage without labels:           %d bits\n"+
			"Unique field values only:               %d bits (saving %.1f%%, paper: more than 50%%)\n"+
			"Including 68-bit rule keys in the Rule Filter: %d bits (net saving %.1f%%)\n",
		a.Rules, a.RawFieldBits, a.UniqueFieldBits, 100*a.FieldSavingFraction,
		a.UniqueFieldBits+a.LabelReferenceBits, 100*a.NetSavingFraction)
}
