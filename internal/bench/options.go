// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§V and Table I–VII) from the packages in
// this repository and renders them in the same shape as the paper, so that
// EXPERIMENTS.md can record paper-versus-measured values side by side.
package bench

import (
	"fmt"

	"sdnpc/internal/algo/lut"
	"sdnpc/internal/algo/mbt"
	"sdnpc/internal/algo/segtrie"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// OptionConfig describes one of the single-field algorithm combinations
// evaluated in Table I: Option 1 is a 5-level multi-bit trie for the IP
// fields, a 4-level segment trie for the port fields and a register LUT for
// the protocol; Option 2 swaps the level counts (4-level MBT, 5-level
// segment trie).
type OptionConfig struct {
	Name           string
	IPTrieLevels   int
	PortTrieLevels int
}

// Option1 returns the Table I "Option 1" configuration.
func Option1() OptionConfig {
	return OptionConfig{Name: "Option 1", IPTrieLevels: 5, PortTrieLevels: 4}
}

// Option2 returns the Table I "Option 2" configuration.
func Option2() OptionConfig {
	return OptionConfig{Name: "Option 2", IPTrieLevels: 4, PortTrieLevels: 5}
}

// optionClassifier composes full-width single-field engines (the Option 1/2
// rows of Table I): one 32-bit multi-bit trie per IP field, one segment trie
// per port field and a protocol LUT, combined through a label cross-product
// table as in the decomposition approach of the authors' prior work.
type optionClassifier struct {
	cfg OptionConfig

	srcTrie  *mbt.Engine
	dstTrie  *mbt.Engine
	srcPorts *segtrie.Engine
	dstPorts *segtrie.Engine
	proto    *lut.Table

	// labels per field value.
	srcLabels, dstLabels map[string]label.Label
	spLabels, dpLabels   map[string]label.Label
	protoLabels          map[string]label.Label
	// combos maps the packed label 5-tuple of every rule to the best rule
	// priority using it.
	combos map[[5]label.Label]int

	rules []fivetuple.Rule
}

// buildOption constructs the composite classifier for a rule set.
func buildOption(cfg OptionConfig, rs *fivetuple.RuleSet) (*optionClassifier, error) {
	ipCfg := mbt.UniformConfig(32, cfg.IPTrieLevels)
	srcTrie, err := mbt.New(ipCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	dstTrie, err := mbt.New(ipCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	srcPorts, err := segtrie.New(cfg.PortTrieLevels)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	dstPorts, err := segtrie.New(cfg.PortTrieLevels)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	oc := &optionClassifier{
		cfg:         cfg,
		srcTrie:     srcTrie,
		dstTrie:     dstTrie,
		srcPorts:    srcPorts,
		dstPorts:    dstPorts,
		proto:       lut.MustNew(8),
		srcLabels:   make(map[string]label.Label),
		dstLabels:   make(map[string]label.Label),
		spLabels:    make(map[string]label.Label),
		dpLabels:    make(map[string]label.Label),
		protoLabels: make(map[string]label.Label),
		combos:      make(map[[5]label.Label]int),
		rules:       rs.Rules(),
	}
	for _, r := range oc.rules {
		if err := oc.insert(r); err != nil {
			return nil, err
		}
	}
	return oc, nil
}

func allocLabel(m map[string]label.Label, key string) (label.Label, bool) {
	if l, ok := m[key]; ok {
		return l, false
	}
	l := label.Label(len(m))
	m[key] = l
	return l, true
}

func (oc *optionClassifier) insert(r fivetuple.Rule) error {
	srcKey := r.SrcPrefix.Canonical().String()
	srcLbl, created := allocLabel(oc.srcLabels, srcKey)
	if created {
		p := r.SrcPrefix.Canonical()
		if _, err := oc.srcTrie.Insert(uint32(p.Addr), p.Len, srcLbl, r.Priority); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	dstKey := r.DstPrefix.Canonical().String()
	dstLbl, created := allocLabel(oc.dstLabels, dstKey)
	if created {
		p := r.DstPrefix.Canonical()
		if _, err := oc.dstTrie.Insert(uint32(p.Addr), p.Len, dstLbl, r.Priority); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	spLbl, created := allocLabel(oc.spLabels, r.SrcPort.String())
	if created {
		if _, err := oc.srcPorts.Insert(r.SrcPort, spLbl, r.Priority); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	dpLbl, created := allocLabel(oc.dpLabels, r.DstPort.String())
	if created {
		if _, err := oc.dstPorts.Insert(r.DstPort, dpLbl, r.Priority); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	protoKey := "*"
	if !r.Protocol.IsWildcard() {
		protoKey = fivetuple.ExactProtocol(r.Protocol.Value).String()
	}
	prLbl, created := allocLabel(oc.protoLabels, protoKey)
	if created {
		if r.Protocol.IsWildcard() {
			oc.proto.InsertWildcard(prLbl, r.Priority)
		} else {
			oc.proto.InsertExact(r.Protocol.Value, prLbl, r.Priority)
		}
	}
	combo := [5]label.Label{srcLbl, dstLbl, spLbl, dpLbl, prLbl}
	if existing, ok := oc.combos[combo]; !ok || r.Priority < existing {
		oc.combos[combo] = r.Priority
	}
	return nil
}

// classify returns the HPMR priority, whether a rule matched and the number
// of memory accesses (per-field engine accesses plus one combination-table
// probe per examined label combination).
func (oc *optionClassifier) classify(h fivetuple.Header) (priority int, matched bool, accesses int) {
	srcList, a1 := oc.srcTrie.Lookup(uint32(h.SrcIP))
	dstList, a2 := oc.dstTrie.Lookup(uint32(h.DstIP))
	spList, a3 := oc.srcPorts.Lookup(h.SrcPort)
	dpList, a4 := oc.dstPorts.Lookup(h.DstPort)
	prList, a5 := oc.proto.Lookup(h.Protocol)
	accesses = a1 + a2 + a3 + a4 + a5

	best := 0
	found := false
	for _, s := range srcList.Labels() {
		for _, d := range dstList.Labels() {
			for _, sp := range spList.Labels() {
				for _, dp := range dpList.Labels() {
					for _, pr := range prList.Labels() {
						accesses++
						if p, ok := oc.combos[[5]label.Label{s, d, sp, dp, pr}]; ok {
							if !found || p < best {
								best = p
								found = true
							}
						}
					}
				}
			}
		}
	}
	return best, found, accesses
}

// memoryBits returns the storage consumed by the composite classifier.
func (oc *optionClassifier) memoryBits() int {
	total := oc.srcTrie.MemoryBits() + oc.srcTrie.LabelListBits() +
		oc.dstTrie.MemoryBits() + oc.dstTrie.LabelListBits() +
		oc.srcPorts.MemoryBits() + oc.srcPorts.LabelListBits() +
		oc.dstPorts.MemoryBits() + oc.dstPorts.LabelListBits() +
		oc.proto.MemoryBits()
	// The combination table stores the five labels and the rule priority per
	// distinct combination.
	total += len(oc.combos) * (5*16 + 14)
	return total
}
