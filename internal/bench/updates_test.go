package bench

import (
	"testing"

	"sdnpc/internal/classbench"
)

func TestUpdateSweepShapesAndCounters(t *testing.T) {
	w := NewWorkload(classbench.ACL, classbench.Size1K, 500)
	rows, err := UpdateSweep(w, UpdateSweepOptions{
		Engines: []string{"mbt", "hypercuts"},
		Ops:     60,
		Readers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// mbt runs once as "field"; hypercuts runs in both update modes.
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (field + delta + rebuild)", len(rows))
	}
	byMode := map[string]UpdateSweepRow{}
	for _, r := range rows {
		byMode[r.Engine+"/"+r.Mode] = r
		if r.Ops == 0 || r.UpdatesPerSec <= 0 || r.LookupsPerSec <= 0 {
			t.Errorf("row %s/%s has empty measurements: %+v", r.Engine, r.Mode, r)
		}
		if r.UpdateP99 < r.UpdateP50 {
			t.Errorf("row %s/%s: p99 %v below p50 %v", r.Engine, r.Mode, r.UpdateP99, r.UpdateP50)
		}
	}
	field, ok := byMode["mbt/field"]
	if !ok || field.DeltasApplied != 0 || field.Rebuilds != 0 {
		t.Errorf("field row should carry no packet-tier counters: %+v", field)
	}
	delta, ok := byMode["hypercuts/delta"]
	if !ok || delta.DeltasApplied == 0 {
		t.Errorf("delta row should have applied deltas: %+v", delta)
	}
	rebuild, ok := byMode["hypercuts/rebuild"]
	if !ok || rebuild.DeltasApplied != 0 || rebuild.Rebuilds == 0 {
		t.Errorf("rebuild row should rebuild every publish and apply no deltas: %+v", rebuild)
	}
	if out := RenderUpdateSweep(rows); len(out) == 0 {
		t.Error("RenderUpdateSweep produced no output")
	}
}

func TestUpdateSweepRejectsUnknownEngine(t *testing.T) {
	w := NewWorkload(classbench.ACL, classbench.Size1K, 100)
	if _, err := UpdateSweep(w, UpdateSweepOptions{Engines: []string{"no-such-engine"}, Ops: 5}); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestUpdateSweepPacing(t *testing.T) {
	w := NewWorkload(classbench.ACL, classbench.Size1K, 100)
	rows, err := UpdateSweep(w, UpdateSweepOptions{
		Engines: []string{"mbt"}, Ops: 20, Readers: 1, OpsPerSecond: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 ops at 2000/s should take ~10ms, so the sustained rate must not
	// exceed the pace by much (scheduling may make it slower, never faster).
	if got := rows[0].UpdatesPerSec; got > 3000 {
		t.Errorf("paced sweep ran at %.0f updates/s, want <= ~2000", got)
	}
}
