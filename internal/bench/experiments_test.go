package bench

import (
	"strings"
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
)

// smallWorkload builds a fast workload for unit testing the harness; the
// full-size workloads are exercised by the benchmarks and cmd/experiments.
func smallWorkload() Workload {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 200, Seed: 12})
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 200, Seed: 13, MatchFraction: 0.9})
	return Workload{RuleSet: rs, Trace: trace}
}

func TestNewWorkload(t *testing.T) {
	w := NewWorkload(classbench.ACL, classbench.Size1K, 64)
	if w.RuleSet.Len() != classbench.RuleCount(classbench.ACL, classbench.Size1K) {
		t.Errorf("workload rule count = %d", w.RuleSet.Len())
	}
	if len(w.Trace) != 64 {
		t.Errorf("workload trace length = %d, want 64", len(w.Trace))
	}
}

func TestUnitConversions(t *testing.T) {
	if Mbit(1<<20) != 1 {
		t.Errorf("Mbit(2^20) = %v, want 1", Mbit(1<<20))
	}
	if Kbit(1024) != 1 {
		t.Errorf("Kbit(1024) = %v, want 1", Kbit(1024))
	}
}

func TestTable1SmallWorkload(t *testing.T) {
	rows, err := Table1(smallWorkload())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table1 returned %d rows, want 5", len(rows))
	}
	byName := make(map[string]Table1Row, len(rows))
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.AvgAccesses <= 0 || r.MemorySpaceMb <= 0 {
			t.Errorf("row %q has non-positive measurements: %+v", r.Algorithm, r)
		}
	}
	// Structural shape checks that hold even on this reduced workload: RFC
	// performs a fixed, small number of table indexings but pays for it with
	// the largest precomputed tables among the decomposition approaches
	// (HyperCuts and DCFL); the remaining Table I relationships depend on the
	// 10K workload and are reported (paper versus measured) in
	// EXPERIMENTS.md rather than asserted here.
	if byName["RFC"].AvgAccesses != 13 {
		t.Errorf("RFC accesses = %.1f, want the constant 13", byName["RFC"].AvgAccesses)
	}
	for _, name := range []string{"HyperCuts", "DCFL"} {
		if byName["RFC"].MemorySpaceMb <= byName[name].MemorySpaceMb {
			t.Errorf("RFC memory (%.2f Mb) should exceed %s memory (%.2f Mb)",
				byName["RFC"].MemorySpaceMb, name, byName[name].MemorySpaceMb)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "HyperCuts") {
		t.Errorf("RenderTable1 output malformed:\n%s", out)
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("Table2 returned %d rows", len(rows))
	}
	for _, r := range rows {
		for f, want := range r.PaperCount {
			if got := r.UniqueCount[f]; got != want {
				t.Errorf("%s %s unique count = %d, paper %d", r.Name, f, got, want)
			}
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "Table II") {
		t.Error("RenderTable2 output malformed")
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	rows := Table3()
	for _, r := range rows {
		if r.Rules1K != r.Paper1K || r.Rules5K != r.Paper5K || r.Rules10K != r.Paper10K {
			t.Errorf("%v rule counts (%d,%d,%d) differ from paper (%d,%d,%d)",
				r.Class, r.Rules1K, r.Rules5K, r.Rules10K, r.Paper1K, r.Paper5K, r.Paper10K)
		}
	}
	if out := RenderTable3(rows); !strings.Contains(out, "Table III") {
		t.Error("RenderTable3 output malformed")
	}
}

func TestTable4ReproducesPaperOrdering(t *testing.T) {
	result, err := Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	want := []string{"B", "C", "A"}
	if len(result.LabelOrder) != len(want) {
		t.Fatalf("label order = %v, want %v", result.LabelOrder, want)
	}
	for i := range want {
		if result.LabelOrder[i] != want[i] {
			t.Fatalf("label order = %v, want %v", result.LabelOrder, want)
		}
	}
	if out := RenderTable4(result); !strings.Contains(out, "B, C, A") {
		t.Errorf("RenderTable4 output malformed:\n%s", out)
	}
}

func TestTable5WithinTolerance(t *testing.T) {
	result, err := Table5()
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	within := func(got, want, tol float64) bool { return got >= want*(1-tol) && got <= want*(1+tol) }
	if !within(float64(result.Report.BlockMemoryBits), float64(result.PaperMemoryBits), 0.05) {
		t.Errorf("block memory bits = %d, paper %d", result.Report.BlockMemoryBits, result.PaperMemoryBits)
	}
	if !within(result.Report.FmaxMHz, result.PaperFmaxMHz, 0.10) {
		t.Errorf("fmax = %.2f, paper %.2f", result.Report.FmaxMHz, result.PaperFmaxMHz)
	}
	if out := RenderTable5(result); !strings.Contains(out, "Table V") {
		t.Error("RenderTable5 output malformed")
	}
}

func TestTable6SmallWorkload(t *testing.T) {
	rows, err := Table6(smallWorkload())
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table6 returned %d rows", len(rows))
	}
	var mbtRow, bstRow Table6Row
	for _, r := range rows {
		if r.Algorithm == memory.SelectMBT {
			mbtRow = r
		} else {
			bstRow = r
		}
	}
	// Table VI shape: the MBT sustains one packet per cycle while the BST
	// needs 16; the BST uses far less memory; the BST stores more rules.
	if mbtRow.AccessesPerPacket != 1 || bstRow.AccessesPerPacket != 16 {
		t.Errorf("accesses per packet = %d / %d, want 1 / 16", mbtRow.AccessesPerPacket, bstRow.AccessesPerPacket)
	}
	if bstRow.MemorySpaceKbit >= mbtRow.MemorySpaceKbit {
		t.Errorf("BST memory (%.1f Kbit) should be below MBT memory (%.1f Kbit)",
			bstRow.MemorySpaceKbit, mbtRow.MemorySpaceKbit)
	}
	if bstRow.StoredRuleCapacity <= mbtRow.StoredRuleCapacity {
		t.Errorf("BST capacity (%d) should exceed MBT capacity (%d)",
			bstRow.StoredRuleCapacity, mbtRow.StoredRuleCapacity)
	}
	if out := RenderTable6(rows); !strings.Contains(out, "Table VI") {
		t.Error("RenderTable6 output malformed")
	}
}

func TestTable7(t *testing.T) {
	rows, err := Table7()
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table7 returned %d rows, want 4", len(rows))
	}
	if rows[0].ThroughputGbps < 42 || rows[0].ThroughputGbps > 43 {
		t.Errorf("MBT throughput = %.2f, want ~42.7", rows[0].ThroughputGbps)
	}
	if rows[1].ThroughputGbps < 2.5 || rows[1].ThroughputGbps > 2.8 {
		t.Errorf("BST throughput = %.2f, want ~2.67", rows[1].ThroughputGbps)
	}
	if rows[0].MemorySpaceMb < 1.9 || rows[0].MemorySpaceMb > 2.2 {
		t.Errorf("memory = %.2f Mb, want ~2.1", rows[0].MemorySpaceMb)
	}
	if rows[2].Source != "literature" || rows[3].Source != "literature" {
		t.Error("comparator rows must be marked as literature values")
	}
	if out := RenderTable7(rows); !strings.Contains(out, "Table VII") {
		t.Error("RenderTable7 output malformed")
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if r.MBTLatencyCycles != 10 || r.BSTLatencyCycles != 20 {
		t.Errorf("latencies = %d / %d cycles, want 10 / 20", r.MBTLatencyCycles, r.BSTLatencyCycles)
	}
	if len(r.MBTStages) != 4 || len(r.BSTStages) != 4 {
		t.Errorf("stage counts = %d / %d, want 4 each", len(r.MBTStages), len(r.BSTStages))
	}
	if out := RenderFig3(r); !strings.Contains(out, "Fig. 3") {
		t.Error("RenderFig3 output malformed")
	}
}

func TestFig5(t *testing.T) {
	r := Fig5()
	if r.RuleCapacityMBT != 8192 {
		t.Errorf("MBT capacity = %d, want 8192", r.RuleCapacityMBT)
	}
	if r.RuleCapacityBST != r.RuleCapacityMBT+r.ExtraRulesFromShare {
		t.Errorf("BST capacity %d inconsistent with extra %d", r.RuleCapacityBST, r.ExtraRulesFromShare)
	}
	if r.SharedBlockBits <= 0 || r.FreedMBTBits <= 0 {
		t.Errorf("sharing bits = %d / %d", r.SharedBlockBits, r.FreedMBTBits)
	}
	if out := RenderFig5(r); !strings.Contains(out, "Fig. 5") {
		t.Error("RenderFig5 output malformed")
	}
}

func TestUpdateExperiment(t *testing.T) {
	r, err := UpdateExperiment(smallWorkload())
	if err != nil {
		t.Fatalf("UpdateExperiment: %v", err)
	}
	if r.CyclesPerRule != 3 {
		t.Errorf("CyclesPerRule = %d, want 3", r.CyclesPerRule)
	}
	if r.AvgEngineWritesPerRule <= 0 || r.NewLabelRate <= 0 || r.NewLabelRate > 1 {
		t.Errorf("update result = %+v", r)
	}
	if out := RenderUpdate(r); !strings.Contains(out, "update") {
		t.Error("RenderUpdate output malformed")
	}
}

func TestHPMLAccuracy(t *testing.T) {
	r, err := HPMLAccuracy(smallWorkload())
	if err != nil {
		t.Fatalf("HPMLAccuracy: %v", err)
	}
	if r.Packets != 200 {
		t.Errorf("Packets = %d", r.Packets)
	}
	if r.Agreement < 0 || r.Agreement > 1 || r.ExactMatchRate <= 0 {
		t.Errorf("accuracy result = %+v", r)
	}
	if r.HPMLMatchRate > r.ExactMatchRate {
		t.Errorf("the single-probe mode cannot match more often than the exact mode: %+v", r)
	}
	if out := RenderHPMLAccuracy(r); !strings.Contains(out, "Combination-mode") {
		t.Error("RenderHPMLAccuracy output malformed")
	}
}

func TestLabelMethodAblation(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	a := LabelMethod(rs)
	if a.Rules != rs.Len() {
		t.Errorf("Rules = %d", a.Rules)
	}
	// §III.C: avoiding rule field repetition saves more than 50% of the field
	// storage on the acl1 sets.
	if a.FieldSavingFraction < 0.5 {
		t.Errorf("label-method field saving = %.2f, want > 0.5", a.FieldSavingFraction)
	}
	if a.NetSavingFraction >= a.FieldSavingFraction {
		t.Error("net saving must be below the field-only saving")
	}
	if out := RenderLabelMethod(a); !strings.Contains(out, "label method") {
		t.Error("RenderLabelMethod output malformed")
	}
	_ = fivetuple.Fields() // keep the import referenced even if assertions change
}
