package bench

import (
	"fmt"
	"strings"

	"sdnpc/internal/core"
	"sdnpc/internal/engine"
)

// EngineRow is one row of the engine sweep: the architecture evaluated with
// one registered IP-segment engine on a shared workload.
type EngineRow struct {
	Engine             string
	AvgFieldAccesses   float64
	AvgLatencyCycles   float64
	LookupsPerSecMega  float64
	ThroughputGbps40   float64
	IPMemoryKbit       float64
	IPProvisionedKbit  float64
	RuleCapacity       int
	VerdictMismatches  int
	PacketsReplayed    int
	InitiationInterval int
}

// EngineSweep evaluates every registered IP-segment engine on the workload:
// each engine serves the four IP-segment dimensions of a fresh classifier,
// the full rule set is installed, the trace is replayed and every verdict is
// checked against the linear reference classifier. A non-empty only argument
// restricts the sweep to that engine.
func EngineSweep(w Workload, only string) ([]EngineRow, error) {
	names := engine.IPEngineNames()
	if only != "" {
		found := false
		for _, name := range names {
			if name == only {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown IP engine %q (registered: %v)", only, names)
		}
		names = []string{only}
	}

	rows := make([]EngineRow, 0, len(names))
	for _, name := range names {
		cfg := core.DefaultConfig()
		cfg.IPEngine = name
		c, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: engine %s: %w", name, err)
		}
		if _, err := c.InstallRuleSet(w.RuleSet); err != nil {
			return nil, fmt.Errorf("bench: engine %s: %w", name, err)
		}
		c.ResetStats()
		mismatches := 0
		for _, h := range w.Trace {
			wantIdx, wantOK := w.RuleSet.Classify(h)
			got := c.Lookup(h)
			if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
				mismatches++
			}
		}
		stats := c.Stats()
		report := c.MemoryReport()
		rows = append(rows, EngineRow{
			Engine:             name,
			AvgFieldAccesses:   stats.AverageFieldAccesses(),
			AvgLatencyCycles:   stats.AverageLatencyCycles(),
			LookupsPerSecMega:  c.LookupsPerSecond() / 1e6,
			ThroughputGbps40:   c.ThroughputGbps(40),
			IPMemoryKbit:       Kbit(report.IPAlgorithmUsedBits()),
			IPProvisionedKbit:  Kbit(report.IPEngineProvisionedBits),
			RuleCapacity:       c.RuleCapacity(),
			VerdictMismatches:  mismatches,
			PacketsReplayed:    len(w.Trace),
			InitiationInterval: c.Pipeline().BottleneckInterval(),
		})
	}
	return rows, nil
}

// RenderEngineSweep renders the sweep in the row/column style of the paper's
// tables.
func RenderEngineSweep(rows []EngineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine sweep — every registered IP-segment engine on the same workload\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s %12s %14s %10s %12s\n",
		"engine", "accesses/pkt", "latency cyc", "Mlookups/s", "Gbps@40B", "IP Kbit", "IP prov Kbit", "capacity", "mismatches")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.2f %12.1f %12.1f %10.2f %12.1f %14.1f %10d %6d/%d\n",
			r.Engine, r.AvgFieldAccesses, r.AvgLatencyCycles, r.LookupsPerSecMega,
			r.ThroughputGbps40, r.IPMemoryKbit, r.IPProvisionedKbit, r.RuleCapacity,
			r.VerdictMismatches, r.PacketsReplayed)
	}
	return b.String()
}
