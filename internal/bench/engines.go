package bench

import (
	"fmt"
	"strings"

	"sdnpc/internal/core"
	"sdnpc/internal/engine"
)

// EngineConfig returns the classifier configuration that serves lookups
// with the named registered engine, whichever tier it belongs to: field
// engines select the IP-segment algorithm, whole-packet engines select the
// packet tier. Unknown names are handed to the field-engine configuration
// so core.New reports the error.
func EngineConfig(name string) core.Config {
	cfg := core.DefaultConfig()
	if isPacket, ok := engine.Selectable(name); ok && isPacket {
		cfg.PacketEngine = name
	} else {
		cfg.IPEngine = name
	}
	return cfg
}

// CachedEngineConfig is EngineConfig with the microflow cache enabled at the
// given geometry (shards <= 0 selects the cache's default shard count).
func CachedEngineConfig(name string, shards, capacity int) core.Config {
	cfg := EngineConfig(name)
	cfg.CacheShards = shards
	cfg.CacheCapacity = capacity
	return cfg
}

// EngineRow is one row of the engine sweep: the architecture evaluated with
// one registered engine — field tier or whole-packet tier — on a shared
// workload. For a field engine the memory columns report the IP-segment
// node storage; for a packet engine they report the precomputed multi-field
// structure (the Table I memory figure).
type EngineRow struct {
	Engine             string
	Tier               string
	AvgFieldAccesses   float64
	AvgLatencyCycles   float64
	LookupsPerSecMega  float64
	ThroughputGbps40   float64
	EngineMemoryKbit   float64
	ProvisionedKbit    float64
	RuleCapacity       int
	VerdictMismatches  int
	PacketsReplayed    int
	InitiationInterval int
}

// EngineSweep evaluates every selectable engine of both tiers on the
// workload: each engine serves a fresh classifier, the full rule set is
// installed, the trace is replayed and every verdict is checked against the
// linear reference classifier. A non-empty only argument restricts the
// sweep to that engine.
func EngineSweep(w Workload, only string) ([]EngineRow, error) {
	names := engine.SelectableNames()
	if only != "" {
		found := false
		for _, name := range names {
			if name == only {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown engine %q (selectable: %v)", only, names)
		}
		names = []string{only}
	}

	rows := make([]EngineRow, 0, len(names))
	for _, name := range names {
		c, err := core.New(EngineConfig(name))
		if err != nil {
			return nil, fmt.Errorf("bench: engine %s: %w", name, err)
		}
		if _, err := c.InstallRuleSet(w.RuleSet); err != nil {
			return nil, fmt.Errorf("bench: engine %s: %w", name, err)
		}
		c.ResetStats()
		mismatches := 0
		for _, h := range w.Trace {
			wantIdx, wantOK := w.RuleSet.Classify(h)
			got := c.Lookup(h)
			if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
				mismatches++
			}
		}
		rep := c.Report()
		stats := rep.Stats
		report := rep.Memory
		row := EngineRow{
			Engine:             name,
			Tier:               "field",
			AvgFieldAccesses:   stats.AverageFieldAccesses(),
			AvgLatencyCycles:   stats.AverageLatencyCycles(),
			LookupsPerSecMega:  c.LookupsPerSecond() / 1e6,
			ThroughputGbps40:   c.ThroughputGbps(40),
			EngineMemoryKbit:   Kbit(report.IPAlgorithmUsedBits()),
			ProvisionedKbit:    Kbit(report.IPEngineProvisionedBits),
			RuleCapacity:       c.RuleCapacity(),
			VerdictMismatches:  mismatches,
			PacketsReplayed:    len(w.Trace),
			InitiationInterval: c.Pipeline().BottleneckInterval(),
		}
		if report.PacketEngine != "" {
			row.Tier = "packet"
			// Software-precomputed structures have no fixed provisioning; the
			// used size is the Table I memory figure.
			row.EngineMemoryKbit = Kbit(report.PacketEngineUsedBits)
			row.ProvisionedKbit = Kbit(report.PacketEngineUsedBits)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderEngineSweep renders the sweep in the row/column style of the paper's
// tables.
func RenderEngineSweep(rows []EngineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine sweep — every selectable engine (field and whole-packet tiers) on the same workload\n")
	fmt.Fprintf(&b, "%-10s %7s %12s %12s %12s %10s %12s %14s %10s %12s\n",
		"engine", "tier", "accesses/pkt", "latency cyc", "Mlookups/s", "Gbps@40B", "mem Kbit", "prov Kbit", "capacity", "mismatches")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7s %12.2f %12.1f %12.1f %10.2f %12.1f %14.1f %10d %6d/%d\n",
			r.Engine, r.Tier, r.AvgFieldAccesses, r.AvgLatencyCycles, r.LookupsPerSecMega,
			r.ThroughputGbps40, r.EngineMemoryKbit, r.ProvisionedKbit, r.RuleCapacity,
			r.VerdictMismatches, r.PacketsReplayed)
	}
	return b.String()
}
