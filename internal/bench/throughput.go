package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// ThroughputOptions parameterises the concurrent serving-path driver.
type ThroughputOptions struct {
	// Engines restricts the sweep to the named engines; empty means every
	// selectable engine of both tiers.
	Engines []string
	// Workers lists the worker counts to sweep; empty means 1, 2, 4, ...
	// up to runtime.NumCPU().
	Workers []int
	// BatchSize is the LookupBatch size per call; <= 0 selects 64.
	BatchSize int
	// PacketsPerWorker is how many packets each worker replays; <= 0 selects
	// 50000.
	PacketsPerWorker int
	// CacheCapacity, when > 0, measures every (engine, workers) cell a
	// second time with the microflow cache enabled at this entry budget, so
	// the sweep reports cached and uncached columns side by side.
	CacheCapacity int
	// CacheShards is the cache shard count for the cached cells; <= 0
	// selects the cache's default.
	CacheShards int
	// Replicated, when set, measures every (engine, workers) cell an
	// additional time in replicated-fleet mode with one replica per worker
	// (and the cache, when enabled, private per replica) — the scaling curve
	// the shared-pointer rows are the baseline for.
	Replicated bool
	// Shards and PartitionBy, when Shards > 1, run every cell with the rule
	// table partitioned into that many shards by the named strategy.
	Shards      int
	PartitionBy string
}

// ThroughputRow is the measured serving throughput of one (engine, workers)
// cell: real packets/second through the software model, and the measured
// wall-clock latency distribution of individual LookupBatch calls divided by
// the batch size.
type ThroughputRow struct {
	Engine          string
	Workers         int
	BatchSize       int
	Packets         int
	Elapsed         time.Duration
	PacketsPerSec   float64
	P50PerPacket    time.Duration
	P99PerPacket    time.Duration
	MatchedFraction float64
	// SpeedupVs1 is PacketsPerSec relative to the 1-worker row of the same
	// engine and cache setting (1.0 for the 1-worker row itself, 0 when no
	// such row ran).
	SpeedupVs1 float64
	// Cached marks rows measured with the microflow cache enabled.
	Cached bool
	// CacheHitRate is the fraction of lookups the cache answered (cached
	// rows only).
	CacheHitRate float64
	// Replicas is the serving-fleet replica count the row was measured with
	// (0 for shared-pointer rows).
	Replicas int
	// MinWorkerPPS and MaxWorkerPPS are the slowest and fastest individual
	// worker's packets/second — the spread that makes replica imbalance
	// visible.
	MinWorkerPPS float64
	MaxWorkerPPS float64
}

// defaultWorkerCounts doubles from 1 up to the CPU count, always including
// the CPU count itself.
func defaultWorkerCounts() []int {
	limit := runtime.NumCPU()
	if limit < 1 {
		limit = 1
	}
	out := []int{}
	for w := 1; w < limit; w *= 2 {
		out = append(out, w)
	}
	return append(out, limit)
}

// ThroughputSweep measures the concurrent serving path: for every selected
// engine it installs the workload's rule set once, then replays the trace
// from N goroutines calling LookupBatch on the shared classifier, for every
// N in the worker list. Unlike the cycle-accurate tables (which report what
// the modelled hardware would sustain), this reports what the software
// model actually serves — the number CI tracks for regressions.
func ThroughputSweep(w Workload, opts ThroughputOptions) ([]ThroughputRow, error) {
	engines := opts.Engines
	if len(engines) == 0 {
		engines = engine.SelectableNames()
	}
	workers := opts.Workers
	if len(workers) == 0 {
		workers = defaultWorkerCounts()
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 64
	}
	perWorker := opts.PacketsPerWorker
	if perWorker <= 0 {
		perWorker = 50000
	}

	// Each variant is its own speedup-normalisation group: the replicated
	// rows are normalised against the replicated 1-worker row, so their
	// SpeedupVs1 is the scaling curve the gate compares against the
	// shared-pointer baseline's.
	type variant struct {
		cfg        core.Config
		replicated bool
	}
	rows := make([]ThroughputRow, 0, len(engines)*len(workers))
	for _, name := range engines {
		variants := []variant{{cfg: EngineConfig(name)}}
		if opts.CacheCapacity > 0 {
			variants = append(variants, variant{cfg: CachedEngineConfig(name, opts.CacheShards, opts.CacheCapacity)})
		}
		if opts.Replicated {
			base := EngineConfig(name)
			if opts.CacheCapacity > 0 {
				base = CachedEngineConfig(name, opts.CacheShards, opts.CacheCapacity)
			}
			variants = append(variants, variant{cfg: base, replicated: true})
		}
		for _, v := range variants {
			if opts.Shards > 1 {
				v.cfg.Shards = opts.Shards
				v.cfg.PartitionBy = opts.PartitionBy
			}
			engineRows := make([]ThroughputRow, 0, len(workers))
			for _, n := range workers {
				// Each cell gets a freshly built classifier: a shared one
				// would hand later worker counts a pre-warmed cache, making
				// hit rates and speedups depend on sweep order.
				cfg := v.cfg
				if v.replicated {
					cfg.Replicas = n
					if cfg.Replicas < 2 {
						// One worker still goes through the fleet path, so the
						// 1-worker baseline pays the same serving code.
						cfg.Replicas = 2
					}
				}
				c, err := core.New(cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: throughput %s: %w", name, err)
				}
				if _, err := c.InstallRuleSet(w.RuleSet); err != nil {
					return nil, fmt.Errorf("bench: throughput %s: %w", name, err)
				}
				row := runThroughput(c, w.Trace, name, n, batch, perWorker)
				row.Replicas = cfg.Replicas
				if rep := c.Report(); rep.CacheEnabled {
					row.Cached = true
					row.CacheHitRate = rep.Cache.HitRate()
				}
				engineRows = append(engineRows, row)
			}
			// Normalise speedups after the sweep so the 1-worker baseline is
			// found regardless of where it appears in the worker list.
			var base float64
			for _, row := range engineRows {
				if row.Workers == 1 {
					base = row.PacketsPerSec
					break
				}
			}
			for i := range engineRows {
				if base > 0 {
					engineRows[i].SpeedupVs1 = engineRows[i].PacketsPerSec / base
				}
			}
			rows = append(rows, engineRows...)
		}
	}
	return rows, nil
}

// runThroughput drives one (engine, workers) cell. Each worker replays its
// own offset of the shared trace in batches through a worker-pinned Reader
// (its replica's snapshot and cache under the fleet, the shared path
// otherwise), recording the wall-clock time of every LookupBatch call; the
// per-packet latency quantiles are taken over all batch timings of all
// workers.
func runThroughput(c *core.Classifier, trace []fivetuple.Header, name string, workers, batch, perWorker int) ThroughputRow {
	type batchTiming struct {
		elapsed time.Duration
		packets int
	}
	type workerResult struct {
		batchTimes []batchTiming
		matched    int
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			res := workerResult{batchTimes: make([]batchTiming, 0, perWorker/batch+1)}
			hs := make([]fivetuple.Header, 0, batch)
			reader := c.Reader(wi)
			var out []core.Result
			// Offset each worker into the trace so workers exercise
			// different flows concurrently.
			pos := (wi * len(trace)) / workers
			for done := 0; done < perWorker; {
				hs = hs[:0]
				for len(hs) < batch && done+len(hs) < perWorker {
					hs = append(hs, trace[pos%len(trace)])
					pos++
				}
				t0 := time.Now()
				out = reader.LookupBatchInto(out, hs)
				res.batchTimes = append(res.batchTimes, batchTiming{elapsed: time.Since(t0), packets: len(hs)})
				for _, r := range out {
					if r.Matched {
						res.matched++
					}
				}
				done += len(hs)
			}
			results[wi] = res
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Convert every batch timing to a per-packet figure using that batch's
	// actual size — the final batch of a worker may be smaller than the
	// configured batch size.
	var all []time.Duration
	matched := 0
	minPPS, maxPPS := 0.0, 0.0
	for i, res := range results {
		var busy time.Duration
		packets := 0
		for _, bt := range res.batchTimes {
			if bt.packets > 0 {
				all = append(all, bt.elapsed/time.Duration(bt.packets))
			}
			busy += bt.elapsed
			packets += bt.packets
		}
		matched += res.matched
		if busy > 0 {
			pps := float64(packets) / busy.Seconds()
			if i == 0 || pps < minPPS {
				minPPS = pps
			}
			if pps > maxPPS {
				maxPPS = pps
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[int(q*float64(len(all)-1))]
	}
	total := workers * perWorker
	row := ThroughputRow{
		Engine:          name,
		Workers:         workers,
		BatchSize:       batch,
		Packets:         total,
		Elapsed:         elapsed,
		MatchedFraction: float64(matched) / float64(total),
		P50PerPacket:    quantile(0.50),
		P99PerPacket:    quantile(0.99),
	}
	if elapsed > 0 {
		row.PacketsPerSec = float64(total) / elapsed.Seconds()
	}
	row.MinWorkerPPS = minPPS
	row.MaxWorkerPPS = maxPPS
	return row
}

// RenderThroughput renders the sweep as a table.
func RenderThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent serving throughput — snapshot-swap classifier, batched lookups\n")
	fmt.Fprintf(&b, "%-10s %6s %5s %8s %7s %14s %10s %12s %12s %8s %6s %13s\n",
		"engine", "cache", "repl", "workers", "batch", "packets/sec", "speedup", "p50/pkt", "p99/pkt", "match%", "hit%", "min/max wkr")
	for _, r := range rows {
		cacheCol, hitCol := "off", "-"
		if r.Cached {
			cacheCol = "on"
			hitCol = fmt.Sprintf("%.1f", 100*r.CacheHitRate)
		}
		replCol := "-"
		if r.Replicas > 0 {
			replCol = fmt.Sprintf("%d", r.Replicas)
		}
		spread := "-"
		if r.MaxWorkerPPS > 0 {
			spread = fmt.Sprintf("%.2f", r.MinWorkerPPS/r.MaxWorkerPPS)
		}
		fmt.Fprintf(&b, "%-10s %6s %5s %8d %7d %14.0f %9.2fx %12s %12s %7.1f%% %6s %13s\n",
			r.Engine, cacheCol, replCol, r.Workers, r.BatchSize, r.PacketsPerSec, r.SpeedupVs1,
			r.P50PerPacket, r.P99PerPacket, 100*r.MatchedFraction, hitCol, spread)
	}
	return b.String()
}
