package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureRecord() *Record {
	r := NewRecord(RecordConfig{Class: "acl", Size: "1k", Rules: 916, Packets: 10000})
	r.AddEngineRows([]EngineRow{{
		Engine:            "mbt",
		Tier:              "field",
		AvgFieldAccesses:  10.5,
		AvgLatencyCycles:  24,
		LookupsPerSecMega: 2.5, // 400 ns/lookup
		EngineMemoryKbit:  512,
		RuleCapacity:      8192,
		PacketsReplayed:   10000,
	}})
	return r
}

// TestRecordRoundTrip pins the BENCH_*.json artifact contract: Write emits a
// schema-valid file under the canonical date-first name, ReadRecord loads it
// back identically, and LatestRecord picks the lexically newest artifact.
func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := fixtureRecord()
	if err := r.Validate(); err != nil {
		t.Fatalf("fixture record invalid: %v", err)
	}
	if name := r.FileName(); !strings.HasPrefix(name, "BENCH_"+r.Date+"_") || !strings.HasSuffix(name, ".json") {
		t.Fatalf("FileName() = %q, want BENCH_<date>_<host>.json", name)
	}

	path, err := r.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != RecordSchema || got.Config != r.Config || len(got.Results) != len(r.Results) {
		t.Fatalf("round-trip mismatch: got %+v, want %+v", got, r)
	}
	if got.Results[0].Metrics["mlookups_per_sec"] != 2.5 {
		t.Fatalf("metrics lost in round trip: %+v", got.Results[0].Metrics)
	}

	// LatestRecord: an older artifact must lose to the fixture's date.
	old := fixtureRecord()
	old.Date = "2001-01-01"
	if _, err := old.Write(dir); err != nil {
		t.Fatal(err)
	}
	latest, latestPath, err := LatestRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latestPath != path || latest.Date != r.Date {
		t.Fatalf("LatestRecord picked %s (%s), want %s (%s)", latestPath, latest.Date, path, r.Date)
	}

	// LookupNs derives ns/packet from the engine-sweep cell.
	if ns, ok := latest.LookupNs("mbt"); !ok || ns != 400 {
		t.Fatalf("LookupNs(mbt) = (%v, %v), want (400, true)", ns, ok)
	}
	if _, ok := latest.LookupNs("nope"); ok {
		t.Fatal("LookupNs must miss for an unrecorded engine")
	}
}

// TestRecordValidateRejects enumerates the schema violations Validate must
// catch before an artifact is persisted or consumed.
func TestRecordValidateRejects(t *testing.T) {
	mutations := map[string]func(*Record){
		"wrong schema":   func(r *Record) { r.Schema = "sdnpc-bench/v0" },
		"bad date":       func(r *Record) { r.Date = "08/08/2026" },
		"no host":        func(r *Record) { r.Host = "" },
		"no environment": func(r *Record) { r.Environment.GoVersion = "" },
		"no results":     func(r *Record) { r.Results = nil },
		"unnamed result": func(r *Record) { r.Results[0].Engine = "" },
		"empty metrics":  func(r *Record) { r.Results[0].Metrics = nil },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			r := fixtureRecord()
			mutate(r)
			if err := r.Validate(); err == nil {
				t.Fatalf("Validate accepted a record with %s", name)
			}
			if _, err := r.Write(t.TempDir()); err == nil {
				t.Fatalf("Write persisted a record with %s", name)
			}
		})
	}
}

// TestLatestRecordEmpty pins the no-artifact signal the advisor checks for.
func TestLatestRecordEmpty(t *testing.T) {
	if _, _, err := LatestRecord(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("LatestRecord on an empty dir: err = %v, want os.ErrNotExist", err)
	}
}

// TestRecordFileNameSanitised keeps hostile hostnames out of the file path.
func TestRecordFileNameSanitised(t *testing.T) {
	r := fixtureRecord()
	r.Host = "web server/01"
	name := r.FileName()
	if strings.ContainsAny(name, "/ ") || name != filepath.Base(name) {
		t.Fatalf("FileName() = %q leaks path or space characters", name)
	}
}
