package bench

import (
	"runtime"
	"strings"
	"testing"

	"sdnpc/internal/classbench"
)

func throughputWorkload() Workload {
	return NewWorkload(classbench.ACL, classbench.Size1K, 2000)
}

func TestThroughputSweepMechanics(t *testing.T) {
	w := throughputWorkload()
	rows, err := ThroughputSweep(w, ThroughputOptions{
		Engines:          []string{"mbt"},
		Workers:          []int{1, 2},
		BatchSize:        32,
		PacketsPerWorker: 2000,
	})
	if err != nil {
		t.Fatalf("ThroughputSweep: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Engine != "mbt" || r.BatchSize != 32 {
			t.Errorf("row %d = %+v, want engine mbt batch 32", i, r)
		}
		if r.Packets != r.Workers*2000 {
			t.Errorf("row %d replayed %d packets, want %d", i, r.Packets, r.Workers*2000)
		}
		if r.PacketsPerSec <= 0 {
			t.Errorf("row %d packets/sec = %v, want > 0", i, r.PacketsPerSec)
		}
		if r.P50PerPacket <= 0 || r.P99PerPacket < r.P50PerPacket {
			t.Errorf("row %d latency quantiles p50=%v p99=%v are not ordered", i, r.P50PerPacket, r.P99PerPacket)
		}
		if r.MatchedFraction <= 0 {
			t.Errorf("row %d matched nothing; the trace targets the rule set", i)
		}
	}
	if rows[0].Workers != 1 || rows[0].SpeedupVs1 != 1.0 {
		t.Errorf("first row = %+v, want the 1-worker baseline with speedup 1.0", rows[0])
	}
	if rows[1].SpeedupVs1 <= 0 {
		t.Errorf("second row speedup = %v, want > 0 (relative to the 1-worker row)", rows[1].SpeedupVs1)
	}
	if out := RenderThroughput(rows); !strings.Contains(out, "mbt") || !strings.Contains(out, "packets/sec") {
		t.Errorf("RenderThroughput output missing expected columns:\n%s", out)
	}
}

// TestThroughputSweepCachedRows verifies the cached/uncached pairing: with a
// cache capacity set, every engine gets an uncached and a cached row per
// worker count, the cached rows report a hit rate, and on a Zipf-skewed
// trace that hit rate is substantial.
func TestThroughputSweepCachedRows(t *testing.T) {
	w := Workload{RuleSet: throughputWorkload().RuleSet}
	w.Trace = classbench.GenerateTrace(w.RuleSet, classbench.TraceConfig{
		Packets: 2000, Seed: 99, MatchFraction: 0.9, ZipfSkew: 1.1, Flows: 256,
	})
	rows, err := ThroughputSweep(w, ThroughputOptions{
		Engines:          []string{"mbt"},
		Workers:          []int{1},
		PacketsPerWorker: 4000,
		CacheCapacity:    4096,
		CacheShards:      4,
	})
	if err != nil {
		t.Fatalf("ThroughputSweep: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want an uncached and a cached one", len(rows))
	}
	if rows[0].Cached || !rows[1].Cached {
		t.Fatalf("rows = %+v, want [uncached, cached]", rows)
	}
	if rows[1].CacheHitRate < 0.5 {
		t.Errorf("cache hit rate on the Zipf trace = %.2f, want >= 0.5", rows[1].CacheHitRate)
	}
	if rows[0].MatchedFraction != rows[1].MatchedFraction {
		t.Errorf("cached row changed the verdicts: match %.3f vs %.3f",
			rows[1].MatchedFraction, rows[0].MatchedFraction)
	}
	out := RenderThroughput(rows)
	if !strings.Contains(out, "cache") || !strings.Contains(out, "hit%") {
		t.Errorf("RenderThroughput output missing the cache columns:\n%s", out)
	}
}

func TestThroughputSweepRejectsUnknownEngine(t *testing.T) {
	if _, err := ThroughputSweep(throughputWorkload(), ThroughputOptions{
		Engines: []string{"no-such-engine"}, Workers: []int{1}, PacketsPerWorker: 10,
	}); err == nil {
		t.Fatal("sweep accepted an unregistered engine")
	}
}

// TestThroughputScalesWithWorkers asserts the acceptance criterion of the
// concurrent serving path: more workers move more packets per second
// through one shared classifier. It needs real parallelism, so it skips on
// small machines and in -short mode rather than flake.
func TestThroughputScalesWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping scaling measurement in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to demonstrate scaling, have %d", runtime.NumCPU())
	}
	rows, err := ThroughputSweep(throughputWorkload(), ThroughputOptions{
		Engines:          []string{"mbt"},
		Workers:          []int{1, 4},
		PacketsPerWorker: 20000,
	})
	if err != nil {
		t.Fatalf("ThroughputSweep: %v", err)
	}
	speedup := rows[1].PacketsPerSec / rows[0].PacketsPerSec
	if speedup <= 1.0 {
		t.Errorf("4-worker throughput is %.2fx the 1-worker rate, want > 1x (lock-free serving should scale)", speedup)
	}
}
