package shard_test

import (
	"math/rand"
	"reflect"
	"testing"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/shard"
)

// src6Rule builds a rule matching only the IPv6 source prefix; the IPv4
// prefixes stay wildcard (the family contract), so the rule matches only v6
// headers.
func src6Rule(prefix string) fivetuple.Rule {
	r := fivetuple.Wildcard(0, fivetuple.ActionForward)
	r.Src6 = fivetuple.MustParsePrefix6(prefix)
	return r
}

// TestAssignMaskedProtocolAdversarial pins Assign's exactness for partial
// protocol masks whose covered values are NOT a contiguous range — the shapes
// a first-byte/last-byte range computation gets wrong. Every case is
// cross-checked against the brute-force cover over a non-power-of-two shard
// count, where residue aliasing is least forgiving.
func TestAssignMaskedProtocolAdversarial(t *testing.T) {
	masks := []fivetuple.ProtocolMatch{
		// Low bit masked: covers every even value — 128 scattered values.
		{Value: 0, Mask: 0x01},
		// High bit masked: two contiguous halves 0..127 or 128..255.
		{Value: 0x80, Mask: 0x80},
		// Scattered pairs: 0x81 covers {1, 3, 5, ...}? No — v&0x81 == 0x01
		// covers v in {1, 3, ..} minus high-bit values: four-corner shape.
		{Value: 0x01, Mask: 0x81},
		// Value bits outside the mask must be ignored (v&0xFE == 6 covers 6,7
		// regardless of Value's low bit).
		{Value: 0x07, Mask: 0xFE},
		// Checkerboard mask.
		{Value: 0x55, Mask: 0x55},
		// Full mask and empty mask as the boundary cases.
		{Value: 0x11, Mask: 0xFF},
		{Value: 0x99, Mask: 0x00},
	}
	for _, k := range []int{2, 3, 5, 7, 256} {
		p, err := shard.New(k, shard.ByProtocol)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range masks {
			r := protoRule(m)
			want := bruteForceCover(p, r, k, shard.ByProtocol)
			got := p.Assign(r)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("k=%d mask %02x/%02x: Assign = %v; want %v", k, m.Value, m.Mask, got, want)
			}
		}
	}
}

// TestSteerBySrcByteIPv6 checks that IPv6 headers steer by the top byte of
// the 128-bit source address — not the zero IPv4 field, which would funnel
// every v6 packet into shard 0.
func TestSteerBySrcByteIPv6(t *testing.T) {
	p, err := shard.New(4, shard.BySrcByte)
	if err != nil {
		t.Fatal(err)
	}
	h := fivetuple.Header{
		Family: fivetuple.FamilyIPv6,
		SrcIP6: fivetuple.MustParseIPv6("2001:db8::1"), // top byte 0x20
	}
	if got, want := p.Steer(h), 0x20%4; got != want {
		t.Errorf("v6 header steered to shard %d; want %d (top byte 0x20)", got, want)
	}
	// The IPv4 field must be ignored for a v6 header even when (bogusly) set.
	h.SrcIP = fivetuple.MustParseIPv4("99.0.0.1")
	if got, want := p.Steer(h), 0x20%4; got != want {
		t.Errorf("v6 header with stray v4 field steered to shard %d; want %d", got, want)
	}
}

// TestAssignBySrcByteFamilies checks the per-family coverage union: a
// family-specific rule covers only its own family's top-byte range, and a
// rule wildcard in both families covers the union.
func TestAssignBySrcByteFamilies(t *testing.T) {
	p, err := shard.New(4, shard.BySrcByte)
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3}
	cases := []struct {
		name string
		rule fivetuple.Rule
		want []int
	}{
		// 0x20 % 4 == 0.
		{"v6 /32", src6Rule("2001:db8::/32"), []int{0}},
		{"v6 /128", src6Rule("fe80::1/128"), []int{0xfe % 4}},
		// A v6 /7 covers top bytes 0xfe and 0xff.
		{"v6 /7 straddle", src6Rule("fe00::/7"), []int{0xfe % 4, 0xff % 4}},
		// A v6 wildcard source with a pinned v6 destination still matches any
		// v6 source byte — but no v4 header (Dst6 constrained).
		{"v6 dst-only", func() fivetuple.Rule {
			r := fivetuple.Wildcard(0, fivetuple.ActionForward)
			r.Dst6 = fivetuple.MustParsePrefix6("2001:db8::/32")
			return r
		}(), all},
		// A v4-constrained rule (non-wildcard v4 source) covers only its v4
		// byte: it can never match a v6 header.
		{"v4 only", srcRule("10.0.0.0/8"), []int{10 % 4}},
		// Wildcard in both families: matches any header of either family.
		{"dual wildcard", fivetuple.Wildcard(0, fivetuple.ActionForward), all},
		// Contradictory rule constraining both families matches nothing.
		{"contradictory", func() fivetuple.Rule {
			r := srcRule("10.0.0.0/8")
			r.Src6 = fivetuple.MustParsePrefix6("2001:db8::/32")
			return r
		}(), []int{}},
	}
	for _, tc := range cases {
		got := p.Assign(tc.rule)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Assign = %v; want %v", tc.name, got, tc.want)
		}
	}
}

// TestSteerAssignAgreementIPv6 extends the covering invariant to mixed-family
// traffic: for every v6 (and v4) header a rule matches, the steered shard must
// be in the rule's assigned set.
func TestSteerAssignAgreementIPv6(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rules := make([]fivetuple.Rule, 48)
	for i := range rules {
		r := fivetuple.Wildcard(i, fivetuple.ActionForward)
		switch rng.Intn(3) {
		case 0: // v6-constrained rule
			r.Src6 = fivetuple.Prefix6{
				Addr: fivetuple.IPv6{Hi: rng.Uint64(), Lo: rng.Uint64()},
				Len:  uint8(rng.Intn(129)),
			}
		case 1: // v4-constrained rule
			r.SrcPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(rng.Uint32()), Len: uint8(rng.Intn(33))}
		}
		if rng.Intn(2) == 0 {
			r.Protocol = fivetuple.ProtocolMatch{Value: uint8(rng.Intn(256)), Mask: uint8(rng.Intn(256))}
		}
		rules[i] = r
	}
	for _, strategy := range []shard.Strategy{shard.ByProtocol, shard.BySrcByte} {
		for _, k := range []int{2, 5, 16} {
			p, err := shard.New(k, strategy)
			if err != nil {
				t.Fatal(err)
			}
			assigned := make([][]int, len(rules))
			for ri, r := range rules {
				assigned[ri] = p.Assign(r)
			}
			for i := 0; i < 20000; i++ {
				var h fivetuple.Header
				if i%2 == 0 {
					h = fivetuple.Header{
						Family: fivetuple.FamilyIPv6,
						SrcIP6: fivetuple.IPv6{Hi: rng.Uint64(), Lo: rng.Uint64()},
						DstIP6: fivetuple.IPv6{Hi: rng.Uint64(), Lo: rng.Uint64()},
					}
					// Half the v6 headers are derived from a v6 rule's prefix
					// so matches actually occur.
					if i%4 == 0 {
						r := rules[rng.Intn(len(rules))]
						c := r.Src6.Canonical()
						h.SrcIP6 = c.Addr
					}
				} else {
					h = fivetuple.Header{
						SrcIP: fivetuple.IPv4(rng.Uint32()),
						DstIP: fivetuple.IPv4(rng.Uint32()),
					}
				}
				h.Protocol = uint8(rng.Intn(256))
				steered := p.Steer(h)
				for ri, r := range rules {
					if !r.Matches(h) {
						continue
					}
					found := false
					for _, s := range assigned[ri] {
						if s == steered {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%v k=%d: header %v steered to %d, but matching rule %v assigned to %v",
							strategy, k, h, steered, r, assigned[ri])
					}
				}
			}
		}
	}
}
