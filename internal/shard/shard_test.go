package shard_test

import (
	"math/rand"
	"reflect"
	"testing"

	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/shard"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		name string
		want shard.Strategy
		ok   bool
	}{
		{"", shard.ByProtocol, true},
		{"protocol", shard.ByProtocol, true},
		{"src-byte", shard.BySrcByte, true},
		{"dst-byte", 0, false},
		{"Protocol", 0, false},
	}
	for _, tc := range cases {
		got, err := shard.ParseStrategy(tc.name)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseStrategy(%q) accepted; want error", tc.name)
		}
	}
	// Every valid strategy round-trips through its String spelling.
	for _, s := range []shard.Strategy{shard.ByProtocol, shard.BySrcByte} {
		back, err := shard.ParseStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", s.String(), back, err, s)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, k := range []int{-1, 0, 1, 257} {
		if _, err := shard.New(k, shard.ByProtocol); err == nil {
			t.Errorf("New(%d) accepted; want error", k)
		}
	}
	if _, err := shard.New(4, shard.Strategy(0)); err == nil {
		t.Error("New with zero strategy accepted; want error")
	}
	p, err := shard.New(7, shard.BySrcByte)
	if err != nil {
		t.Fatalf("New(7, BySrcByte): %v", err)
	}
	if p.Shards() != 7 || p.Strategy() != shard.BySrcByte {
		t.Errorf("got k=%d strategy=%v; want 7, BySrcByte", p.Shards(), p.Strategy())
	}
}

// protoRule builds a rule matching only the protocol condition; every other
// field is a wildcard.
func protoRule(m fivetuple.ProtocolMatch) fivetuple.Rule {
	r := fivetuple.Wildcard(0, fivetuple.ActionForward)
	r.Protocol = m
	return r
}

// srcRule builds a rule matching only the source prefix; every other field is
// a wildcard.
func srcRule(prefix string) fivetuple.Rule {
	r := fivetuple.Wildcard(0, fivetuple.ActionForward)
	r.SrcPrefix = fivetuple.MustParsePrefix(prefix)
	return r
}

// TestAssignByProtocol checks that every rule lands in exactly the shard set
// its protocol match covers.
func TestAssignByProtocol(t *testing.T) {
	p, err := shard.New(4, shard.ByProtocol)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    fivetuple.ProtocolMatch
		want []int
	}{
		{"exact TCP", fivetuple.ExactProtocol(fivetuple.ProtoTCP), []int{int(fivetuple.ProtoTCP) % 4}},
		{"exact UDP", fivetuple.ExactProtocol(fivetuple.ProtoUDP), []int{int(fivetuple.ProtoUDP) % 4}},
		{"wildcard", fivetuple.WildcardProtocol(), []int{0, 1, 2, 3}},
		// Mask 0xFE covers values 6 and 7 -> shards 2 and 3 of 4.
		{"masked pair", fivetuple.ProtocolMatch{Value: 6, Mask: 0xFE}, []int{2, 3}},
		// Mask 0xFC covers 4..7 -> all four residues.
		{"masked quad", fivetuple.ProtocolMatch{Value: 4, Mask: 0xFC}, []int{0, 1, 2, 3}},
	}
	for _, tc := range cases {
		got := p.Assign(protoRule(tc.m))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Assign = %v; want %v", tc.name, got, tc.want)
		}
	}
}

// TestAssignBySrcByte checks the prefix-to-shard cover sets, including
// prefixes straddling the partition byte and non-canonical addresses.
func TestAssignBySrcByte(t *testing.T) {
	p, err := shard.New(4, shard.BySrcByte)
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3}
	cases := []struct {
		name   string
		prefix string
		want   []int
	}{
		{"/32 exact", "10.1.2.3/32", []int{10 % 4}},
		{"/8 boundary", "20.0.0.0/8", []int{20 % 4}},
		{"/16 inside byte", "172.16.0.0/16", []int{172 % 4}},
		// A /7 covers two consecutive top bytes (12 and 13).
		{"/7 straddle", "12.0.0.0/7", []int{12 % 4, 13 % 4}},
		// A /6 covers four top bytes 8..11 -> all residues of 4.
		{"/6 straddle", "8.0.0.0/6", all},
		{"/0 wildcard", "0.0.0.0/0", all},
		// Host bits below the prefix length must not shift the cover set.
		{"non-canonical /7", "13.9.9.9/7", []int{12 % 4, 13 % 4}},
	}
	for _, tc := range cases {
		got := p.Assign(srcRule(tc.prefix))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Assign(%s) = %v; want %v", tc.name, tc.prefix, got, tc.want)
		}
	}
}

// TestAssignMatchesBruteForce cross-checks Assign against a brute-force
// enumeration of all 256 partition-byte values for randomly generated rules:
// the assigned shard set must be exactly the set {Steer(h) : r.Matches(h)}
// restricted to the partition byte.
func TestAssignMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, strategy := range []shard.Strategy{shard.ByProtocol, shard.BySrcByte} {
		for _, k := range []int{2, 3, 5, 16, 256} {
			p, err := shard.New(k, strategy)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				r := randomRule(rng)
				want := bruteForceCover(p, r, k, strategy)
				got := p.Assign(r)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v k=%d rule %v: Assign = %v; want %v", strategy, k, r, got, want)
				}
			}
		}
	}
}

// bruteForceCover enumerates every partition-byte value, builds a header
// carrying it that otherwise satisfies the rule, and collects the steered
// shards of the values the rule matches.
func bruteForceCover(p *shard.Partitioner, r fivetuple.Rule, k int, strategy shard.Strategy) []int {
	hit := make([]bool, k)
	for v := 0; v < 256; v++ {
		h := fivetuple.Header{
			SrcIP:    r.SrcPrefix.Canonical().Addr,
			DstIP:    r.DstPrefix.Canonical().Addr,
			SrcPort:  r.SrcPort.Lo,
			DstPort:  r.DstPort.Lo,
			Protocol: r.Protocol.Value & r.Protocol.Mask,
		}
		if strategy == shard.BySrcByte {
			h.SrcIP = fivetuple.IPv4(uint32(v)<<24 | uint32(h.SrcIP)&0x00FFFFFF)
		} else {
			h.Protocol = uint8(v)
		}
		if r.Matches(h) {
			hit[p.Steer(h)] = true
		}
	}
	out := []int{}
	for s := 0; s < k; s++ {
		if hit[s] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// randomRule generates rules with varied protocol and prefix shapes: exact,
// masked and wildcard protocols; prefixes of every length including those
// shorter than the partition byte.
func randomRule(rng *rand.Rand) fivetuple.Rule {
	r := fivetuple.Wildcard(rng.Intn(1000), fivetuple.ActionForward)
	switch rng.Intn(3) {
	case 0:
		r.Protocol = fivetuple.ExactProtocol(uint8(rng.Intn(256)))
	case 1:
		r.Protocol = fivetuple.ProtocolMatch{Value: uint8(rng.Intn(256)), Mask: uint8(rng.Intn(256))}
	}
	r.SrcPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(rng.Uint32()), Len: uint8(rng.Intn(33))}
	r.DstPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(rng.Uint32()), Len: uint8(rng.Intn(33))}
	return r
}

// TestSteerAssignAgreement drives 100k generated headers against a pool of
// generated rules: for every (header, rule) pair where the rule matches the
// header, the shard Steer picks must be in the rule's assigned shard set —
// the covering invariant the sharded serving path relies on.
func TestSteerAssignAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rules := make([]fivetuple.Rule, 64)
	for i := range rules {
		rules[i] = randomRule(rng)
	}
	partitioners := []*shard.Partitioner{}
	for _, strategy := range []shard.Strategy{shard.ByProtocol, shard.BySrcByte} {
		for _, k := range []int{2, 5, 16} {
			p, err := shard.New(k, strategy)
			if err != nil {
				t.Fatal(err)
			}
			partitioners = append(partitioners, p)
		}
	}
	assigned := make([][][]int, len(partitioners))
	for pi, p := range partitioners {
		assigned[pi] = make([][]int, len(rules))
		for ri, r := range rules {
			assigned[pi][ri] = p.Assign(r)
		}
	}
	const headers = 100000
	checked := 0
	for i := 0; i < headers; i++ {
		h := fivetuple.Header{
			SrcIP:    fivetuple.IPv4(rng.Uint32()),
			DstIP:    fivetuple.IPv4(rng.Uint32()),
			SrcPort:  uint16(rng.Intn(65536)),
			DstPort:  uint16(rng.Intn(65536)),
			Protocol: uint8(rng.Intn(256)),
		}
		// Half the headers are derived from a rule so matches actually occur.
		if i%2 == 1 {
			r := rules[rng.Intn(len(rules))]
			h.SrcIP = r.SrcPrefix.Canonical().Addr | fivetuple.IPv4(rng.Uint32()&^uint32(r.SrcPrefix.Mask()))
			h.DstIP = r.DstPrefix.Canonical().Addr | fivetuple.IPv4(rng.Uint32()&^uint32(r.DstPrefix.Mask()))
			h.SrcPort = r.SrcPort.Lo
			h.DstPort = r.DstPort.Lo
			h.Protocol = r.Protocol.Value&r.Protocol.Mask | uint8(rng.Intn(256))&^r.Protocol.Mask
		}
		for pi, p := range partitioners {
			steered := p.Steer(h)
			for ri, r := range rules {
				if !r.Matches(h) {
					continue
				}
				checked++
				found := false
				for _, s := range assigned[pi][ri] {
					if s == steered {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v k=%d: header %v steered to shard %d, but matching rule %v assigned to %v",
						p.Strategy(), p.Shards(), h, steered, r, assigned[pi][ri])
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no (header, matching rule) pair was exercised")
	}
}

// TestDegenerateShardServing covers the two degenerate table shapes: every
// rule concentrated in one shard (the others empty) and a table whose only
// traffic targets empty shards. Both must serve exactly like the unsharded
// classifier.
func TestDegenerateShardServing(t *testing.T) {
	// All rules share one protocol, so under protocol partitioning every rule
	// lands in the single shard TCP steers to and the rest stay empty.
	rules := []fivetuple.Rule{}
	for i := 0; i < 8; i++ {
		r := fivetuple.Wildcard(i, fivetuple.ActionForward)
		r.Protocol = fivetuple.ExactProtocol(fivetuple.ProtoTCP)
		r.SrcPrefix = fivetuple.MustParsePrefix("10.0.0.0/8")
		r.DstPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(uint32(i) << 24), Len: 8}
		r.ActionArg = uint32(100 + i)
		rules = append(rules, r)
	}
	rs := fivetuple.NewRuleSet("degenerate", rules)

	shardedCfg := core.DefaultConfig()
	shardedCfg.Shards = 4
	shardedCfg.PartitionBy = "protocol"
	sharded, err := core.New(shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.InstallRuleSet(rs); err != nil {
		t.Fatalf("sharded install: %v", err)
	}
	if _, err := plain.InstallRuleSet(rs); err != nil {
		t.Fatalf("plain install: %v", err)
	}

	rep := sharded.Report()
	if len(rep.Shards) != 4 {
		t.Fatalf("Report().Shards has %d entries; want 4", len(rep.Shards))
	}
	populated := 0
	for _, sr := range rep.Shards {
		if sr.Rules > 0 {
			populated++
			if sr.Rules != len(rules) {
				t.Errorf("populated shard holds %d rules; want %d", sr.Rules, len(rules))
			}
		}
	}
	if populated != 1 {
		t.Errorf("%d shards populated; want exactly 1 (all rules share one protocol)", populated)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h := fivetuple.Header{
			SrcIP:   fivetuple.IPv4(rng.Uint32()),
			DstIP:   fivetuple.IPv4(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			// Cycle protocols so every shard — the three empty ones included —
			// serves a slice of the traffic.
			Protocol: uint8(i % 256),
		}
		if i%3 == 0 {
			h.SrcIP = fivetuple.MustParseIPv4("10.1.2.3")
			h.Protocol = fivetuple.ProtoTCP
		}
		got := sharded.Lookup(h)
		want := plain.Lookup(h)
		if got.Matched != want.Matched || got.Priority != want.Priority ||
			got.Action != want.Action || got.ActionArg != want.ActionArg {
			t.Fatalf("header %v: sharded %+v != unsharded %+v", h, got, want)
		}
	}
}
