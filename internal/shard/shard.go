// Package shard implements rule-space partitioning for the classifier's
// sharded serving mode: a Partitioner splits one five-tuple rule table into K
// disjoint shards by a cheap header-derived key, so each shard's engine is
// built over only its rule slice — a smaller, faster structure (the paper's
// memory/accesses trade-off applies per shard).
//
// The contract that makes a sharded table answer bit-identically to the
// unsharded one is the covering invariant: for every header h a rule r can
// match, Steer(h) is an element of Assign(r). Rules whose match condition
// spans several steering keys (a wildcard protocol, a short prefix) replicate
// into every shard they cover, so the single shard Steer picks always holds
// every rule that could match the header — the per-shard first match IS the
// global first match, and no lookup-time re-merge across shards is needed.
package shard

import (
	"fmt"

	"sdnpc/internal/fivetuple"
)

// Strategy selects the header byte the rule space is partitioned by.
type Strategy uint8

// Partition strategies.
const (
	// ByProtocol steers by the IP protocol byte. Exact-protocol rules land
	// in one shard; wildcard (and masked) protocol rules replicate into
	// every shard their mask covers.
	ByProtocol Strategy = iota + 1
	// BySrcByte steers by the top byte of the source address. Rules with a
	// source prefix of /8 or longer land in one shard; shorter prefixes
	// replicate into the 2^(8-len) shards their covered top bytes map to.
	BySrcByte
)

// String names the strategy with the spelling ParseStrategy accepts.
func (s Strategy) String() string {
	switch s {
	case ByProtocol:
		return "protocol"
	case BySrcByte:
		return "src-byte"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy resolves a strategy name; the empty string selects the
// default ByProtocol.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "protocol":
		return ByProtocol, nil
	case "src-byte":
		return BySrcByte, nil
	default:
		return 0, fmt.Errorf("shard: unknown partition strategy %q (want protocol or src-byte)", name)
	}
}

// Partitioner maps rules to the shard set they must live in and headers to
// the single shard that serves them. It is immutable after New and safe for
// concurrent use.
type Partitioner struct {
	k        int
	strategy Strategy
}

// New builds a partitioner over k shards. k must be at least 2 (one shard is
// the unsharded classifier) and at most 256 (the steering key is one byte).
func New(k int, strategy Strategy) (*Partitioner, error) {
	if k < 2 || k > 256 {
		return nil, fmt.Errorf("shard: shard count %d out of range [2,256]", k)
	}
	switch strategy {
	case ByProtocol, BySrcByte:
	default:
		return nil, fmt.Errorf("shard: unknown strategy %v", strategy)
	}
	return &Partitioner{k: k, strategy: strategy}, nil
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.k }

// Strategy returns the partition strategy.
func (p *Partitioner) Strategy() Strategy { return p.strategy }

// Steer returns the index of the single shard that serves the header — the
// cheap pre-classification the serving path runs before walking any engine.
func (p *Partitioner) Steer(h fivetuple.Header) int {
	return int(p.steerByte(h)) % p.k
}

// steerByte extracts the partition byte of a header under the strategy. The
// extraction is family-aware: an IPv6 header steers by the top byte of its
// 128-bit source address, not the (zero) IPv4 field — steering every v6
// header into shard 0 would break the covering invariant for any v6 rule
// whose source prefix pins a different top byte.
func (p *Partitioner) steerByte(h fivetuple.Header) uint8 {
	if p.strategy == BySrcByte {
		if h.Family == fivetuple.FamilyIPv6 {
			return h.SrcIP6.TopByte()
		}
		return uint8(uint32(h.SrcIP) >> 24)
	}
	return h.Protocol
}

// Assign returns the sorted set of shard indices the rule must be installed
// into: exactly the shards Steer can pick for some header the rule matches.
// The set is computed by enumerating the 256 values of the partition byte the
// rule's match condition covers. Enumerating through Protocol.Matches keeps
// ByProtocol exact for wildcard AND partially masked protocols (a mask like
// 0xFE covers two scattered values no contiguous range captures); BySrcByte
// unions the coverage of each address family the rule can match, so a
// family-specific rule replicates only into its own family's byte range while
// a both-families wildcard covers every shard it can steer to.
func (p *Partitioner) Assign(r fivetuple.Rule) []int {
	var covered [256]bool
	switch p.strategy {
	case BySrcByte:
		// A rule matches IPv4 headers only when its IPv6 prefixes are
		// wildcard, and vice versa (fivetuple.Rule.Matches); each reachable
		// family contributes its source top-byte coverage to the union. A
		// contradictory rule constraining both families matches nothing and
		// honestly covers no shard.
		if r.Src6.IsWildcard() && r.Dst6.IsWildcard() {
			pre := r.SrcPrefix.Canonical()
			if pre.Len >= 8 {
				covered[uint8(uint32(pre.Addr)>>24)] = true
			} else {
				// A /len prefix with len < 8 covers 2^(8-len) consecutive top
				// bytes starting at the prefix's (masked) top byte.
				start := int(uint32(pre.Addr) >> 24)
				for b := 0; b < 1<<(8-pre.Len); b++ {
					covered[start+b] = true
				}
			}
		}
		if r.SrcPrefix.IsWildcard() && r.DstPrefix.IsWildcard() {
			pre6 := r.Src6.Canonical()
			if pre6.Len >= 8 {
				covered[pre6.Addr.TopByte()] = true
			} else {
				start := int(pre6.Addr.TopByte())
				for b := 0; b < 1<<(8-pre6.Len); b++ {
					covered[start+b] = true
				}
			}
		}
	default: // ByProtocol
		for v := 0; v < 256; v++ {
			if r.Protocol.Matches(uint8(v)) {
				covered[v] = true
			}
		}
	}
	var hit [256]bool
	for v := 0; v < 256; v++ {
		if covered[v] {
			hit[v%p.k] = true
		}
	}
	out := make([]int, 0, 1)
	for s := 0; s < p.k; s++ {
		if hit[s] {
			out = append(out, s)
		}
	}
	return out
}
