package sdnpc

import (
	"time"

	"sdnpc/internal/advisor"
	"sdnpc/internal/core"
)

// Recommendation is one ranked tuning suggestion from the advisor: an
// engine switch, new update-policy bounds, or a cache advisory. Apply one
// with ApplyRecommendation.
type Recommendation = advisor.Recommendation

// Recommendation kinds.
const (
	// EngineRecommendation suggests switching the serving engine.
	EngineRecommendation = advisor.KindEngine
	// UpdatePolicyRecommendation suggests new delta-vs-rebuild bounds.
	UpdatePolicyRecommendation = advisor.KindUpdatePolicy
	// CacheRecommendation flags a cache mismatch (advisory only).
	CacheRecommendation = advisor.KindCache
)

// WithSampling enables the traffic sampler: a lock-free ring buffer holding
// the last n served headers, which Advise replays against candidate engines
// so recommendations reflect the live traffic mix rather than a synthetic
// guess. n <= 0 selects the default capacity. Without sampling, Advise
// falls back to a trace derived from the installed rules.
func WithSampling(n int) Option {
	return func(cfg *core.Config) {
		if n <= 0 {
			n = core.DefaultSampleHeaders
		}
		cfg.SampleHeaders = n
	}
}

// WithAutoTune opts the classifier into the self-tuning control plane: a
// background tuner periodically runs the advisor and auto-applies its top
// recommendation through the atomic switch paths, with hysteresis (the same
// target must win consecutive rounds, and a cooldown plus switch-back
// suppression guarantee the engine never flaps). interval <= 0 selects the
// default period. WithAutoTune implies WithSampling at the default capacity
// unless one is configured explicitly. Call Close to stop the tuner.
func WithAutoTune(interval time.Duration) Option {
	return func(cfg *core.Config) {
		cfg.AutoTune = true
		cfg.AutoTuneInterval = interval
	}
}

// Advise runs the workload-adaptive advisor once: it reads the live Report
// signals (cache hit rate, delta debt, publish latency, memory bits),
// shadow-benches candidate engines on a sampled slice of recent traffic
// under a bounded CPU budget, and returns ranked recommendations —
// strongest first, empty when the current configuration already looks
// right. With no arguments every selectable engine is a candidate; naming
// engines restricts the shadow bench to them. Advise never mutates the
// classifier; pass a result to ApplyRecommendation to act on it.
func (c *Classifier) Advise(candidates ...string) ([]Recommendation, error) {
	return advisor.Advise(c.inner, advisor.Options{Candidates: candidates})
}

// ApplyRecommendation applies one advisor recommendation through the
// classifier's atomic reconfiguration paths (engine switch or update-policy
// change). Advisory-only kinds return an error.
func (c *Classifier) ApplyRecommendation(r Recommendation) error {
	return advisor.Apply(c.inner, r)
}

// SetUpdatePolicy adjusts the packet tier's delta-vs-rebuild policy at run
// time — the WithUpdatePolicy knobs on a live classifier. The new bounds
// govern from the next publish.
func (c *Classifier) SetUpdatePolicy(rebuildAfterDeltas int, degradationThreshold float64) error {
	return c.inner.SetUpdatePolicy(rebuildAfterDeltas, degradationThreshold)
}

// AutoTuneEnabled reports whether this classifier runs the background
// auto-tuner (WithAutoTune).
func (c *Classifier) AutoTuneEnabled() bool { return c.tuner != nil }

// AutoApplied returns the recommendations the auto-tuner has applied so
// far; nil without WithAutoTune.
func (c *Classifier) AutoApplied() []Recommendation {
	if c.tuner == nil {
		return nil
	}
	return c.tuner.Applied()
}

// Close releases the classifier's background resources — today, the
// auto-tuner goroutine. A classifier built without WithAutoTune has none,
// so Close is a no-op there; it is always safe to call (and to defer).
func (c *Classifier) Close() {
	if c.tuner != nil {
		c.tuner.Stop()
	}
}
