package sdnpc

import (
	"sync"
	"testing"
)

// The update-storm hammer: a writer floods the incremental update plane of
// the packet tier (single-rule inserts and deletes riding the delta-apply
// path, with periodic amortising rebuilds and hops between the packet
// engines) while readers assert old-or-new-snapshot consistency through the
// microflow cache — a cached verdict from a retired generation must never
// surface. After the storm, the UpdateStats counters must be coherent:
// every update publish was served by exactly one of the delta and rebuild
// paths, the latency histogram saw every publish, the delta debt never
// exceeds the configured bound, and a forced rebuild resets it to zero.
// Run with -race.
func TestConcurrentUpdateStormIncremental(t *testing.T) {
	const rebuildAfterDeltas = 8
	c := MustNew(WithEngine("hypercuts"), WithCache(4, 512), WithUpdatePolicy(rebuildAfterDeltas, 0))

	stable := NewRule(5).From("10.1.0.0/16").To("192.168.0.0/16").DstPort(443).Proto(TCP).Forward(42).MustBuild()
	if _, err := c.Insert(stable); err != nil {
		t.Fatalf("installing stable rule: %v", err)
	}
	flip := NewRule(9).From("10.2.0.0/16").To("192.168.0.0/16").DstPort(80).Proto(TCP).Drop().MustBuild()

	headerStable := MustParseHeader("10.1.2.3", 1234, "192.168.1.1", 443, TCP)
	headerFlip := MustParseHeader("10.2.9.9", 5555, "192.168.3.4", 80, TCP)
	headerMiss := MustParseHeader("172.16.0.1", 9, "172.16.0.2", 9, UDP)

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if r := c.Lookup(headerStable); !r.Matched || r.Priority != 5 || r.ActionArg != 42 {
					t.Errorf("stable rule lookup = %+v, want the priority-5 forward in every snapshot", r)
				}
				if r := c.Lookup(headerFlip); r.Matched && (r.Priority != 9 || r.Action != Drop) {
					t.Errorf("flip rule lookup = %+v, want a miss or the priority-9 drop", r)
				}
				if r := c.Lookup(headerMiss); r.Matched {
					t.Errorf("miss header matched %+v; no installed rule ever covers it", r)
				}
				batch := c.LookupBatch([]Header{headerFlip, headerStable, headerFlip})
				if batch[0].Matched != batch[2].Matched {
					t.Errorf("one batch saw the flip rule both installed and absent: %+v vs %+v", batch[0], batch[2])
				}
			}
		}()
	}

	// The writer hops only between packet engines, so every update publish
	// runs the packet-tier update plane and the publish accounting below is
	// exact: updates = 1 stable insert + 2 per iteration.
	packetEngines := PacketEngines()
	const writerIterations = 150
	updates := uint64(1)
	for i := 0; i < writerIterations; i++ {
		if _, err := c.Insert(flip); err != nil {
			t.Fatalf("insert flip: %v", err)
		}
		updates++
		if i%25 == 12 {
			if err := c.SelectEngine(packetEngines[(i/25)%len(packetEngines)]); err != nil {
				t.Fatalf("engine hop: %v", err)
			}
		}
		if _, err := c.Delete(flip); err != nil {
			t.Fatalf("delete flip: %v", err)
		}
		updates++
		if debt := c.UpdateStats().DeltasSinceRebuild; debt >= rebuildAfterDeltas {
			t.Fatalf("delta debt %d reached the bound %d; the amortising rebuild never fired", debt, rebuildAfterDeltas)
		}
	}
	close(done)
	wg.Wait()

	// Post-storm coherence: every update publish went through exactly one of
	// the two paths, and the histogram saw them all.
	stats := c.UpdateStats()
	if stats.DeltaPublishes+stats.Rebuilds != updates {
		t.Errorf("delta publishes (%d) + rebuilds (%d) != update publishes (%d)",
			stats.DeltaPublishes, stats.Rebuilds, updates)
	}
	if stats.PublishLatency.Total() != updates {
		t.Errorf("PublishLatency.Total() = %d, want %d", stats.PublishLatency.Total(), updates)
	}
	if stats.DeltasApplied == 0 || stats.Rebuilds == 0 {
		t.Errorf("storm should exercise both paths: %+v", stats)
	}

	// A forced rebuild (engine re-selection reinstalls the structure) must
	// reset the delta debt coherently.
	if err := c.SelectEngine("dcfl"); err != nil {
		t.Fatalf("forcing a rebuild: %v", err)
	}
	if got := c.UpdateStats().DeltasSinceRebuild; got != 0 {
		t.Errorf("DeltasSinceRebuild after a forced rebuild = %d, want 0", got)
	}

	// Quiesced end state: the flip rule is deleted; any cached verdict for
	// it belongs to a retired generation and must not surface.
	for i := 0; i < 3; i++ {
		if r := c.Lookup(headerFlip); r.Matched {
			t.Fatalf("flip rule served after its final delete (stale-generation cache hit): %+v", r)
		}
		if r := c.Lookup(headerStable); !r.Matched || r.Priority != 5 {
			t.Fatalf("stable rule lost after the storm: %+v", r)
		}
	}
	if cs, ok := c.CacheStats(); !ok || cs.Hits == 0 {
		t.Errorf("the storm never hit the cache: %+v", cs)
	}
}

// The concurrent-serving hammer: N goroutines call Lookup and LookupBatch
// while one writer inserts and deletes a rule and switches the serving
// engine across every selectable name — Engines() covers both tiers, so the
// writer repeatedly moves the classifier between the per-field label path
// and the whole-packet engines (rfc-full, dcfl, hypercuts) mid-traffic.
// Every observed result must be consistent with either the pre-update or the
// post-update rule set — the snapshot-swap guarantee. Run it with -race; the
// race detector is what turns "no torn state was observed" into "no torn
// state was readable".
func TestConcurrentServingDuringUpdates(t *testing.T) {
	c := MustNew()

	stable := NewRule(5).From("10.1.0.0/16").To("192.168.0.0/16").DstPort(443).Proto(TCP).Forward(42).MustBuild()
	if _, err := c.Insert(stable); err != nil {
		t.Fatalf("installing stable rule: %v", err)
	}
	flip := NewRule(9).From("10.2.0.0/16").To("192.168.0.0/16").DstPort(80).Proto(TCP).Drop().MustBuild()

	headerStable := MustParseHeader("10.1.2.3", 1234, "192.168.1.1", 443, TCP)
	headerFlip := MustParseHeader("10.2.9.9", 5555, "192.168.3.4", 80, TCP)
	headerMiss := MustParseHeader("172.16.0.1", 9, "172.16.0.2", 9, UDP)

	checkStable := func(r Result) {
		if !r.Matched || r.Priority != 5 || r.Action != Forward || r.ActionArg != 42 {
			t.Errorf("stable rule lookup = %+v, want priority-5 forward to 42 in every snapshot", r)
		}
	}
	checkFlip := func(r Result) {
		if r.Matched && (r.Priority != 9 || r.Action != Drop) {
			t.Errorf("flip rule lookup = %+v, want either a miss or the priority-9 drop", r)
		}
	}
	checkMiss := func(r Result) {
		if r.Matched {
			t.Errorf("miss header matched %+v; no installed rule covers it", r)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkStable(c.Lookup(headerStable))
				checkFlip(c.Lookup(headerFlip))
				checkMiss(c.Lookup(headerMiss))

				batch := c.LookupBatch([]Header{headerStable, headerFlip, headerMiss, headerFlip})
				checkStable(batch[0])
				checkFlip(batch[1])
				checkMiss(batch[2])
				checkFlip(batch[3])
				// A batch is served by one snapshot, so the two flip
				// lookups inside it must agree even though the writer is
				// inserting and deleting that rule the whole time.
				if batch[1].Matched != batch[3].Matched {
					t.Errorf("one batch saw the flip rule both installed and absent: %+v vs %+v", batch[1], batch[3])
				}
				rep := SummarizeBatch(batch)
				if rep.Packets != 4 || rep.Matched < 1 || rep.MaxLatencyCycles < rep.LatencyCycles/rep.Packets {
					t.Errorf("batch summary inconsistent: %+v", rep)
				}
			}
		}()
	}

	engines := Engines()
	const writerIterations = 120
	for i := 0; i < writerIterations; i++ {
		if _, err := c.Insert(flip); err != nil {
			t.Errorf("insert flip: %v", err)
			break
		}
		if i%20 == 10 {
			if err := c.SelectEngine(engines[(i/20)%len(engines)]); err != nil {
				t.Errorf("engine switch: %v", err)
				break
			}
		}
		if _, err := c.Delete(flip); err != nil {
			t.Errorf("delete flip: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()

	if got := c.RuleCount(); got != 1 {
		t.Errorf("RuleCount after the hammer = %d, want 1 (the stable rule)", got)
	}
	checkStable(c.Lookup(headerStable))
	if r := c.Lookup(headerFlip); r.Matched {
		t.Errorf("flip rule still installed after final delete: %+v", r)
	}
	stats := c.Stats()
	if stats.Inserts != writerIterations+1 || stats.Deletes != writerIterations {
		t.Errorf("stats = %d inserts / %d deletes, want %d / %d",
			stats.Inserts, stats.Deletes, writerIterations+1, writerIterations)
	}
}

// The cache-coherence hammer: the same update storm, tier hops and lookup
// flood as above, but with the microflow cache in front of both tiers. The
// invariants tighten accordingly: a lookup must never return a verdict
// inconsistent with the old-or-new snapshot — in cache terms, a
// stale-generation entry must never be served after the writer's
// clone-mutate-swap publishes a successor, even though the cache is shared
// across snapshots and never flushed. Readers hammer a tiny header set so
// nearly every lookup is a cache hit or fill; the writer churns the rule set
// and hops engines so generations retire constantly. Run with -race.
func TestConcurrentCacheCoherenceDuringUpdates(t *testing.T) {
	c := MustNew(WithCache(4, 512))

	stable := NewRule(5).From("10.1.0.0/16").To("192.168.0.0/16").DstPort(443).Proto(TCP).Forward(42).MustBuild()
	if _, err := c.Insert(stable); err != nil {
		t.Fatalf("installing stable rule: %v", err)
	}
	flip := NewRule(9).From("10.2.0.0/16").To("192.168.0.0/16").DstPort(80).Proto(TCP).Drop().MustBuild()

	headerStable := MustParseHeader("10.1.2.3", 1234, "192.168.1.1", 443, TCP)
	headerFlip := MustParseHeader("10.2.9.9", 5555, "192.168.3.4", 80, TCP)
	headerMiss := MustParseHeader("172.16.0.1", 9, "172.16.0.2", 9, UDP)

	checkStable := func(r Result) {
		if !r.Matched || r.Priority != 5 || r.Action != Forward || r.ActionArg != 42 {
			t.Errorf("stable rule lookup = %+v, want priority-5 forward to 42 in every snapshot", r)
		}
	}
	checkFlip := func(r Result) {
		if r.Matched && (r.Priority != 9 || r.Action != Drop) {
			t.Errorf("flip rule lookup = %+v, want either a miss or the priority-9 drop", r)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkStable(c.Lookup(headerStable))
				checkFlip(c.Lookup(headerFlip))
				if r := c.Lookup(headerMiss); r.Matched {
					t.Errorf("miss header matched %+v; no installed rule ever covers it", r)
				}
				batch := c.LookupBatch([]Header{headerFlip, headerStable, headerFlip})
				// One batch is served by one snapshot generation: the two
				// flip lookups must agree even though the writer inserts and
				// deletes that rule — and retires cache generations — the
				// whole time.
				if batch[0].Matched != batch[2].Matched {
					t.Errorf("one batch saw the flip rule both installed and absent: %+v vs %+v", batch[0], batch[2])
				}
				checkStable(batch[1])
			}
		}()
	}

	engines := Engines()
	const writerIterations = 120
	for i := 0; i < writerIterations; i++ {
		if _, err := c.Insert(flip); err != nil {
			t.Errorf("insert flip: %v", err)
			break
		}
		if i%15 == 7 {
			if err := c.SelectEngine(engines[(i/15)%len(engines)]); err != nil {
				t.Errorf("engine switch: %v", err)
				break
			}
		}
		if _, err := c.Delete(flip); err != nil {
			t.Errorf("delete flip: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()

	// The writer has stopped with the flip rule deleted. Any cached verdict
	// for it belongs to a retired generation; serving one now would be the
	// stale-generation hit the design forbids.
	for i := 0; i < 3; i++ {
		if r := c.Lookup(headerFlip); r.Matched {
			t.Fatalf("flip rule served after its final delete (stale-generation cache hit): %+v", r)
		}
		checkStable(c.Lookup(headerStable))
	}
	stats, ok := c.CacheStats()
	if !ok {
		t.Fatal("cache disabled on a WithCache classifier")
	}
	if stats.Hits == 0 {
		t.Errorf("the hammer never hit the cache: %+v", stats)
	}
	if got := c.RuleCount(); got != 1 {
		t.Errorf("RuleCount after the hammer = %d, want 1 (the stable rule)", got)
	}
}

// The replica-coherence hammer: the update storm, engine-tier hops and
// tenant churn run against a replicated serving fleet over a sharded, cached
// table. Every publish fans out to R per-worker snapshot/cache replicas;
// worker-pinned readers hammer their own replica and assert that every
// observed verdict is a single consistent cut — old rule set or new, never a
// mix inside one batch — and that a replica's generation never moves
// backwards. Stale verdicts cannot be served by construction (each replica's
// private cache is generation-keyed against that replica's own snapshot),
// which the quiesced flip-rule probes pin down. After the storm quiesces,
// every replica must have converged to the fleet generation. Run with -race.
func TestConcurrentReplicaCoherence(t *testing.T) {
	const replicas = 4
	c := MustNew(WithEngine("hypercuts"), WithCache(4, 512),
		WithReplicas(replicas), WithShards(4, "protocol"))

	stable := NewRule(5).From("10.1.0.0/16").To("192.168.0.0/16").DstPort(443).Proto(TCP).Forward(42).MustBuild()
	if _, err := c.Insert(stable); err != nil {
		t.Fatalf("installing stable rule: %v", err)
	}
	flip := NewRule(9).From("10.2.0.0/16").To("192.168.0.0/16").DstPort(80).Proto(TCP).Drop().MustBuild()

	headerStable := MustParseHeader("10.1.2.3", 1234, "192.168.1.1", 443, TCP)
	headerFlip := MustParseHeader("10.2.9.9", 5555, "192.168.3.4", 80, TCP)
	headerMiss := MustParseHeader("172.16.0.1", 9, "172.16.0.2", 9, UDP)

	checkStable := func(r Result) {
		if !r.Matched || r.Priority != 5 || r.Action != Forward || r.ActionArg != 42 {
			t.Errorf("stable rule lookup = %+v, want priority-5 forward to 42 in every snapshot", r)
		}
	}
	checkFlip := func(r Result) {
		if r.Matched && (r.Priority != 9 || r.Action != Drop) {
			t.Errorf("flip rule lookup = %+v, want either a miss or the priority-9 drop", r)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	// Two worker-pinned readers per replica: distinct worker ids that map to
	// the same replica must still each see a consistent cut.
	const readers = 2 * replicas
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			reader := c.Reader(worker)
			lastGen := reader.Generation()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkStable(reader.Lookup(headerStable))
				checkFlip(reader.Lookup(headerFlip))
				if r := reader.Lookup(headerMiss); r.Matched {
					t.Errorf("miss header matched %+v; no installed rule ever covers it", r)
				}
				// One batch is served by one replica snapshot: the two flip
				// lookups must agree — old or new, never mixed — even while
				// the writer's fan-out is mid-flight across the fleet.
				batch := reader.LookupBatch([]Header{headerFlip, headerStable, headerFlip})
				if batch[0].Matched != batch[2].Matched {
					t.Errorf("one batch saw the flip rule both installed and absent: %+v vs %+v", batch[0], batch[2])
				}
				checkStable(batch[1])
				// A replica's generation is monotonic: fan-out replaces its
				// snapshot with successors only.
				if g := reader.Generation(); g < lastGen {
					t.Errorf("replica generation moved backwards: %d after %d", g, lastGen)
				} else {
					lastGen = g
				}
			}
		}(i)
	}

	// Tenant churn rides along: short-lived replicated classifiers are built,
	// served and dropped while the long-lived fleet is under storm, so replica
	// construction and teardown race against steady-state serving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			tc := MustNew(WithReplicas(2), WithCache(2, 128), WithShards(2, "src-byte"))
			if _, err := tc.Insert(stable); err != nil {
				t.Errorf("churn tenant insert: %v", err)
				return
			}
			checkStable(tc.Reader(0).Lookup(headerStable))
			checkStable(tc.Reader(1).Lookup(headerStable))
		}
	}()

	// Fewer writer iterations than the single-snapshot hammers: every publish
	// here pays a full fan-out (replicas × shards snapshot clones), so 40
	// round trips already retire hundreds of per-replica generations.
	engines := Engines()
	const writerIterations = 40
	for i := 0; i < writerIterations; i++ {
		if _, err := c.Insert(flip); err != nil {
			t.Errorf("insert flip: %v", err)
			break
		}
		if i%14 == 7 {
			if err := c.SelectEngine(engines[(i/14)%len(engines)]); err != nil {
				t.Errorf("engine switch: %v", err)
				break
			}
		}
		if _, err := c.Delete(flip); err != nil {
			t.Errorf("delete flip: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()

	// Quiesced convergence: the final publish's fan-out is complete, so the
	// fleet generation equals the publish generation and every replica has
	// reached it.
	rep := c.Report()
	if rep.FleetGeneration != rep.Generation {
		t.Errorf("fleet generation %d has not converged to publish generation %d", rep.FleetGeneration, rep.Generation)
	}
	if len(rep.Replicas) != replicas {
		t.Fatalf("Report().Replicas has %d entries, want %d", len(rep.Replicas), replicas)
	}
	for i, rr := range rep.Replicas {
		if rr.Generation != rep.Generation {
			t.Errorf("replica %d stuck at generation %d, publish generation is %d", i, rr.Generation, rep.Generation)
		}
		if !rr.CacheEnabled {
			t.Errorf("replica %d lost its private cache", i)
		}
	}
	if rep.Cache.Hits == 0 {
		t.Errorf("the hammer never hit a replica cache: %+v", rep.Cache)
	}

	// The flip rule ended deleted; any cached verdict for it belongs to a
	// retired generation on some replica and must not surface from any of
	// them — the stale-hits-stay-zero guarantee, observed by verdict.
	for worker := 0; worker < readers; worker++ {
		if r := c.Reader(worker).Lookup(headerFlip); r.Matched {
			t.Fatalf("worker %d served the flip rule after its final delete (stale replica cache hit): %+v", worker, r)
		}
		checkStable(c.Reader(worker).Lookup(headerStable))
	}
	if got := c.RuleCount(); got != 1 {
		t.Errorf("RuleCount after the hammer = %d, want 1 (the stable rule)", got)
	}
}
