package sdnpc

import (
	"sync"
	"testing"
)

// The concurrent-serving hammer: N goroutines call Lookup and LookupBatch
// while one writer inserts and deletes a rule and switches the serving
// engine across every selectable name — Engines() covers both tiers, so the
// writer repeatedly moves the classifier between the per-field label path
// and the whole-packet engines (rfc-full, dcfl, hypercuts) mid-traffic.
// Every observed result must be consistent with either the pre-update or the
// post-update rule set — the snapshot-swap guarantee. Run it with -race; the
// race detector is what turns "no torn state was observed" into "no torn
// state was readable".
func TestConcurrentServingDuringUpdates(t *testing.T) {
	c := MustNew()

	stable := NewRule(5).From("10.1.0.0/16").To("192.168.0.0/16").DstPort(443).Proto(TCP).Forward(42).MustBuild()
	if _, err := c.Insert(stable); err != nil {
		t.Fatalf("installing stable rule: %v", err)
	}
	flip := NewRule(9).From("10.2.0.0/16").To("192.168.0.0/16").DstPort(80).Proto(TCP).Drop().MustBuild()

	headerStable := MustParseHeader("10.1.2.3", 1234, "192.168.1.1", 443, TCP)
	headerFlip := MustParseHeader("10.2.9.9", 5555, "192.168.3.4", 80, TCP)
	headerMiss := MustParseHeader("172.16.0.1", 9, "172.16.0.2", 9, UDP)

	checkStable := func(r Result) {
		if !r.Matched || r.Priority != 5 || r.Action != Forward || r.ActionArg != 42 {
			t.Errorf("stable rule lookup = %+v, want priority-5 forward to 42 in every snapshot", r)
		}
	}
	checkFlip := func(r Result) {
		if r.Matched && (r.Priority != 9 || r.Action != Drop) {
			t.Errorf("flip rule lookup = %+v, want either a miss or the priority-9 drop", r)
		}
	}
	checkMiss := func(r Result) {
		if r.Matched {
			t.Errorf("miss header matched %+v; no installed rule covers it", r)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkStable(c.Lookup(headerStable))
				checkFlip(c.Lookup(headerFlip))
				checkMiss(c.Lookup(headerMiss))

				batch := c.LookupBatch([]Header{headerStable, headerFlip, headerMiss, headerFlip})
				checkStable(batch[0])
				checkFlip(batch[1])
				checkMiss(batch[2])
				checkFlip(batch[3])
				// A batch is served by one snapshot, so the two flip
				// lookups inside it must agree even though the writer is
				// inserting and deleting that rule the whole time.
				if batch[1].Matched != batch[3].Matched {
					t.Errorf("one batch saw the flip rule both installed and absent: %+v vs %+v", batch[1], batch[3])
				}
				rep := SummarizeBatch(batch)
				if rep.Packets != 4 || rep.Matched < 1 || rep.MaxLatencyCycles < rep.LatencyCycles/rep.Packets {
					t.Errorf("batch summary inconsistent: %+v", rep)
				}
			}
		}()
	}

	engines := Engines()
	const writerIterations = 120
	for i := 0; i < writerIterations; i++ {
		if _, err := c.Insert(flip); err != nil {
			t.Errorf("insert flip: %v", err)
			break
		}
		if i%20 == 10 {
			if err := c.SelectEngine(engines[(i/20)%len(engines)]); err != nil {
				t.Errorf("engine switch: %v", err)
				break
			}
		}
		if _, err := c.Delete(flip); err != nil {
			t.Errorf("delete flip: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()

	if got := c.RuleCount(); got != 1 {
		t.Errorf("RuleCount after the hammer = %d, want 1 (the stable rule)", got)
	}
	checkStable(c.Lookup(headerStable))
	if r := c.Lookup(headerFlip); r.Matched {
		t.Errorf("flip rule still installed after final delete: %+v", r)
	}
	stats := c.Stats()
	if stats.Inserts != writerIterations+1 || stats.Deletes != writerIterations {
		t.Errorf("stats = %d inserts / %d deletes, want %d / %d",
			stats.Inserts, stats.Deletes, writerIterations+1, writerIterations)
	}
}
