package sdnpc

import (
	"fmt"

	"sdnpc/internal/fivetuple"
)

// RuleBuilder assembles one classification rule fluently:
//
//	rule, err := sdnpc.NewRule(0).
//		From("10.0.0.0/8").To("203.0.113.0/24").
//		DstPort(443).Proto(sdnpc.TCP).
//		Forward(1).Build()
//
// Unset fields stay wildcards. Errors accumulate and surface at Build.
type RuleBuilder struct {
	r   fivetuple.Rule
	err error
}

// NewRule starts a rule with the given priority (smaller is higher priority)
// and every field a wildcard. The default action is Drop.
func NewRule(priority int) *RuleBuilder {
	return &RuleBuilder{r: fivetuple.Wildcard(priority, fivetuple.ActionDrop)}
}

func (b *RuleBuilder) fail(err error) *RuleBuilder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// From sets the source prefix from CIDR notation.
func (b *RuleBuilder) From(cidr string) *RuleBuilder {
	p, err := fivetuple.ParsePrefix(cidr)
	if err != nil {
		return b.fail(fmt.Errorf("sdnpc: source prefix: %w", err))
	}
	b.r.SrcPrefix = p
	return b
}

// To sets the destination prefix from CIDR notation.
func (b *RuleBuilder) To(cidr string) *RuleBuilder {
	p, err := fivetuple.ParsePrefix(cidr)
	if err != nil {
		return b.fail(fmt.Errorf("sdnpc: destination prefix: %w", err))
	}
	b.r.DstPrefix = p
	return b
}

// SrcPort matches one exact source port.
func (b *RuleBuilder) SrcPort(port uint16) *RuleBuilder {
	b.r.SrcPort = fivetuple.ExactPort(port)
	return b
}

// SrcPorts matches an inclusive source-port range.
func (b *RuleBuilder) SrcPorts(lo, hi uint16) *RuleBuilder {
	if lo > hi {
		return b.fail(fmt.Errorf("sdnpc: inverted source port range [%d,%d]", lo, hi))
	}
	b.r.SrcPort = fivetuple.PortRange{Lo: lo, Hi: hi}
	return b
}

// DstPort matches one exact destination port.
func (b *RuleBuilder) DstPort(port uint16) *RuleBuilder {
	b.r.DstPort = fivetuple.ExactPort(port)
	return b
}

// DstPorts matches an inclusive destination-port range.
func (b *RuleBuilder) DstPorts(lo, hi uint16) *RuleBuilder {
	if lo > hi {
		return b.fail(fmt.Errorf("sdnpc: inverted destination port range [%d,%d]", lo, hi))
	}
	b.r.DstPort = fivetuple.PortRange{Lo: lo, Hi: hi}
	return b
}

// Proto matches one exact IP protocol number (TCP, UDP, ...).
func (b *RuleBuilder) Proto(protocol uint8) *RuleBuilder {
	b.r.Protocol = fivetuple.ExactProtocol(protocol)
	return b
}

// Forward sets the action to forward on the given egress port.
func (b *RuleBuilder) Forward(egressPort uint32) *RuleBuilder {
	b.r.Action = fivetuple.ActionForward
	b.r.ActionArg = egressPort
	return b
}

// Drop sets the action to drop.
func (b *RuleBuilder) Drop() *RuleBuilder {
	b.r.Action = fivetuple.ActionDrop
	b.r.ActionArg = 0
	return b
}

// Punt sets the action to punt the packet to the SDN controller.
func (b *RuleBuilder) Punt() *RuleBuilder {
	b.r.Action = fivetuple.ActionController
	b.r.ActionArg = 0
	return b
}

// ModifyWith sets the action to modify with the given argument.
func (b *RuleBuilder) ModifyWith(arg uint32) *RuleBuilder {
	b.r.Action = fivetuple.ActionModify
	b.r.ActionArg = arg
	return b
}

// GroupTo sets the action to redirect to the given group table entry.
func (b *RuleBuilder) GroupTo(group uint32) *RuleBuilder {
	b.r.Action = fivetuple.ActionGroup
	b.r.ActionArg = group
	return b
}

// Build returns the assembled rule or the first accumulated error.
func (b *RuleBuilder) Build() (Rule, error) {
	if b.err != nil {
		return Rule{}, b.err
	}
	return b.r, nil
}

// MustBuild is like Build but panics on error.
func (b *RuleBuilder) MustBuild() Rule {
	r, err := b.Build()
	if err != nil {
		panic(err)
	}
	return r
}

// WildcardRule returns a rule matching every packet, with the given priority
// and action — the conventional default rule at the end of a filter set.
func WildcardRule(priority int, action Action) Rule {
	return fivetuple.Wildcard(priority, action)
}
