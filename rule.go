package sdnpc

import (
	"fmt"

	"sdnpc/internal/fivetuple"
)

// RuleBuilder assembles one classification rule fluently:
//
//	rule, err := sdnpc.NewRule(0).
//		From("10.0.0.0/8").To("203.0.113.0/24").
//		DstPort(443).Proto(sdnpc.TCP).
//		Forward(1).Build()
//
// Unset fields stay wildcards. Errors accumulate and surface at Build.
type RuleBuilder struct {
	r   fivetuple.Rule
	err error
}

// NewRule starts a rule with the given priority (smaller is higher priority)
// and every field a wildcard. The default action is Drop.
func NewRule(priority int) *RuleBuilder {
	return &RuleBuilder{r: fivetuple.Wildcard(priority, fivetuple.ActionDrop)}
}

func (b *RuleBuilder) fail(err error) *RuleBuilder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// From sets the source prefix from CIDR notation.
func (b *RuleBuilder) From(cidr string) *RuleBuilder {
	p, err := fivetuple.ParsePrefix(cidr)
	if err != nil {
		return b.fail(fmt.Errorf("sdnpc: source prefix: %w", err))
	}
	b.r.SrcPrefix = p
	return b
}

// To sets the destination prefix from CIDR notation.
func (b *RuleBuilder) To(cidr string) *RuleBuilder {
	p, err := fivetuple.ParsePrefix(cidr)
	if err != nil {
		return b.fail(fmt.Errorf("sdnpc: destination prefix: %w", err))
	}
	b.r.DstPrefix = p
	return b
}

// SrcPort matches one exact source port.
func (b *RuleBuilder) SrcPort(port uint16) *RuleBuilder {
	b.r.SrcPort = fivetuple.ExactPort(port)
	return b
}

// SrcPorts matches an inclusive source-port range.
func (b *RuleBuilder) SrcPorts(lo, hi uint16) *RuleBuilder {
	if lo > hi {
		return b.fail(fmt.Errorf("sdnpc: inverted source port range [%d,%d]", lo, hi))
	}
	b.r.SrcPort = fivetuple.PortRange{Lo: lo, Hi: hi}
	return b
}

// DstPort matches one exact destination port.
func (b *RuleBuilder) DstPort(port uint16) *RuleBuilder {
	b.r.DstPort = fivetuple.ExactPort(port)
	return b
}

// DstPorts matches an inclusive destination-port range.
func (b *RuleBuilder) DstPorts(lo, hi uint16) *RuleBuilder {
	if lo > hi {
		return b.fail(fmt.Errorf("sdnpc: inverted destination port range [%d,%d]", lo, hi))
	}
	b.r.DstPort = fivetuple.PortRange{Lo: lo, Hi: hi}
	return b
}

// Proto matches one exact IP protocol number (TCP, UDP, ...).
func (b *RuleBuilder) Proto(protocol uint8) *RuleBuilder {
	b.r.Protocol = fivetuple.ExactProtocol(protocol)
	return b
}

// From6 sets the IPv6 source prefix from CIDR notation ("2001:db8::/32").
// Constraining an IPv6 prefix makes the rule IPv6-only; its IPv4 prefixes
// must stay wildcards (Build rejects rules constraining both families).
func (b *RuleBuilder) From6(cidr string) *RuleBuilder {
	p, err := fivetuple.ParsePrefix6(cidr)
	if err != nil {
		return b.fail(fmt.Errorf("sdnpc: IPv6 source prefix: %w", err))
	}
	b.r.Src6 = p
	return b
}

// To6 sets the IPv6 destination prefix from CIDR notation.
func (b *RuleBuilder) To6(cidr string) *RuleBuilder {
	p, err := fivetuple.ParsePrefix6(cidr)
	if err != nil {
		return b.fail(fmt.Errorf("sdnpc: IPv6 destination prefix: %w", err))
	}
	b.r.Dst6 = p
	return b
}

// VLAN matches one exact 802.1Q VLAN tag (1..4095).
func (b *RuleBuilder) VLAN(tag uint16) *RuleBuilder {
	if tag > fivetuple.MaxVLAN {
		return b.fail(fmt.Errorf("sdnpc: VLAN tag %d exceeds %d", tag, fivetuple.MaxVLAN))
	}
	b.r.VLAN = fivetuple.ExactVLAN(tag)
	return b
}

// TCPFlags constrains the TCP flags byte: header bits selected by mask must
// equal the corresponding bits of value. TCPFlags(TCPSyn, TCPSyn|TCPAck)
// matches SYNs that are not SYN-ACKs.
func (b *RuleBuilder) TCPFlags(value, mask uint8) *RuleBuilder {
	b.r.TCPFlags = fivetuple.TCPFlagMatch{Value: value, Mask: mask}
	return b
}

// NonTerminating marks the rule as non-terminating: in a LookupAll a match
// contributes its action and evaluation continues to lower-priority rules.
// Plain Lookup still reports the best match's verdict.
func (b *RuleBuilder) NonTerminating() *RuleBuilder {
	b.r.NonTerminating = true
	return b
}

// Forward sets the action to forward on the given egress port.
func (b *RuleBuilder) Forward(egressPort uint32) *RuleBuilder {
	b.r.Action = fivetuple.ActionForward
	b.r.ActionArg = egressPort
	return b
}

// Drop sets the action to drop.
func (b *RuleBuilder) Drop() *RuleBuilder {
	b.r.Action = fivetuple.ActionDrop
	b.r.ActionArg = 0
	return b
}

// Punt sets the action to punt the packet to the SDN controller.
func (b *RuleBuilder) Punt() *RuleBuilder {
	b.r.Action = fivetuple.ActionController
	b.r.ActionArg = 0
	return b
}

// ModifyWith sets the action to modify with the given argument.
func (b *RuleBuilder) ModifyWith(arg uint32) *RuleBuilder {
	b.r.Action = fivetuple.ActionModify
	b.r.ActionArg = arg
	return b
}

// GroupTo sets the action to redirect to the given group table entry.
func (b *RuleBuilder) GroupTo(group uint32) *RuleBuilder {
	b.r.Action = fivetuple.ActionGroup
	b.r.ActionArg = group
	return b
}

// Build returns the assembled rule or the first accumulated error.
func (b *RuleBuilder) Build() (Rule, error) {
	if b.err != nil {
		return Rule{}, b.err
	}
	v4 := !b.r.SrcPrefix.IsWildcard() || !b.r.DstPrefix.IsWildcard()
	v6 := !b.r.Src6.IsWildcard() || !b.r.Dst6.IsWildcard()
	if v4 && v6 {
		return Rule{}, fmt.Errorf("sdnpc: rule constrains both IPv4 and IPv6 prefixes and can match no header")
	}
	return b.r, nil
}

// MustBuild is like Build but panics on error.
func (b *RuleBuilder) MustBuild() Rule {
	r, err := b.Build()
	if err != nil {
		panic(err)
	}
	return r
}

// WildcardRule returns a rule matching every packet, with the given priority
// and action — the conventional default rule at the end of a filter set.
func WildcardRule(priority int, action Action) Rule {
	return fivetuple.Wildcard(priority, action)
}
