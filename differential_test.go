package sdnpc

import (
	"fmt"
	"testing"

	"sdnpc/internal/bench"
	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// The differential suite: every selectable engine of both tiers, plus the
// microflow-cache-enabled serving path of each tier, must return exactly the
// verdict of the linear-search oracle (fivetuple.RuleSet.Classify) for every
// header. FuzzDifferentialLookup explores random rule sets and headers;
// TestDifferentialEngines replays a deterministic corpus of generated sets
// and hand-built edge cases so the same property is enforced on every plain
// `go test` run, not only under -fuzz.

const (
	maxFuzzRules   = 40
	maxFuzzHeaders = 20
	fuzzRuleBytes  = 20
	fuzzHdrBytes   = 13
)

// decodeDifferentialInput deterministically maps fuzz bytes to a rule list
// and a header list. Malformed values are normalised (prefix lengths mod 33,
// inverted port ranges swapped) rather than rejected, so every input decodes
// to a valid — possibly adversarial — classification workload.
func decodeDifferentialInput(data []byte) ([]fivetuple.Rule, []fivetuple.Header) {
	if len(data) < 2 {
		return nil, nil
	}
	nRules := 1 + int(data[0])%maxFuzzRules
	nHeaders := 1 + int(data[1])%maxFuzzHeaders
	data = data[2:]

	var rules []fivetuple.Rule
	for i := 0; i < nRules && len(data) >= fuzzRuleBytes; i++ {
		rules = append(rules, decodeFuzzRule(data[:fuzzRuleBytes], i))
		data = data[fuzzRuleBytes:]
	}
	var headers []fivetuple.Header
	for i := 0; i < nHeaders && len(data) >= fuzzHdrBytes; i++ {
		headers = append(headers, decodeFuzzHeader(data[:fuzzHdrBytes]))
		data = data[fuzzHdrBytes:]
	}
	// Aim the first header at the first rule so random inputs exercise the
	// match path, not only misses.
	if len(rules) > 0 && len(headers) > 0 {
		headers[0] = headerMatchingRule(rules[0])
	}
	// Every extended-dimension rule gets one engineered header too — random
	// headers essentially never land inside a 128-bit prefix or an exact VLAN
	// tag, so without this the extended match path would go unexercised.
	for _, r := range rules {
		if r.IsExtended() {
			headers = append(headers, headerMatchingRule(r))
		}
	}
	return rules, headers
}

func fuzzU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func fuzzU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// decodeFuzzRule maps fuzzRuleBytes bytes to one normalised rule; arg seeds
// the action argument so rules stay distinguishable.
func decodeFuzzRule(b []byte, arg int) fivetuple.Rule {
	spLo, spHi := fuzzU16(b[10:]), fuzzU16(b[12:])
	if spLo > spHi {
		spLo, spHi = spHi, spLo
	}
	dpLo, dpHi := fuzzU16(b[14:]), fuzzU16(b[16:])
	if dpLo > dpHi {
		dpLo, dpHi = dpHi, dpLo
	}
	r := fivetuple.Rule{
		SrcPrefix: fivetuple.Prefix{Addr: fivetuple.IPv4(fuzzU32(b[0:])), Len: b[4] % 33}.Canonical(),
		DstPrefix: fivetuple.Prefix{Addr: fivetuple.IPv4(fuzzU32(b[5:])), Len: b[9] % 33}.Canonical(),
		SrcPort:   fivetuple.PortRange{Lo: spLo, Hi: spHi},
		DstPort:   fivetuple.PortRange{Lo: dpLo, Hi: dpHi},
		Protocol:  fivetuple.ExactProtocol(b[18]),
		Action:    fivetuple.ActionForward,
		ActionArg: uint32(arg),
	}
	if b[19]&1 == 1 {
		r.Protocol = fivetuple.WildcardProtocol()
	}
	// The remaining bits of b[19] switch on extension dimensions, reusing
	// earlier bytes as entropy so the decode stays deterministic. Paths that
	// cannot serve the resulting dimension set are skipped by the runner
	// (differentialPaths gates on the registry-declared engine dims).
	if b[19]&2 != 0 {
		r.Src6 = fivetuple.Prefix6{
			Addr: fivetuple.IPv6{Hi: 0x20010db8<<32 | uint64(fuzzU32(b[0:])), Lo: uint64(fuzzU32(b[5:])) << 32},
			Len:  16 + b[4]%113,
		}.Canonical()
		r.Dst6 = fivetuple.Prefix6{
			Addr: fivetuple.IPv6{Hi: 0x20010db8<<32 | uint64(fuzzU32(b[5:])), Lo: uint64(fuzzU32(b[0:])) << 32},
			Len:  16 + b[9]%113,
		}.Canonical()
		// A rule constrains one family: going IPv6 clears the v4 prefixes.
		r.SrcPrefix, r.DstPrefix = fivetuple.Prefix{}, fivetuple.Prefix{}
	}
	if b[19]&4 != 0 {
		r.VLAN = fivetuple.ExactVLAN(1 + fuzzU16(b[10:])%fivetuple.MaxVLAN)
	}
	if b[19]&8 != 0 {
		r.TCPFlags = fivetuple.TCPFlagMatch{Value: b[5], Mask: b[9] | 1}
	}
	if b[19]&16 != 0 {
		r.NonTerminating = true
	}
	return r
}

// headerMatchingRule engineers a header that the rule matches, family-aware:
// it sits at the rule's prefix base addresses, its port/protocol extremes and
// the rule's exact VLAN/flag bits.
func headerMatchingRule(r fivetuple.Rule) fivetuple.Header {
	h := fivetuple.Header{
		SrcPort:  r.SrcPort.Lo,
		DstPort:  r.DstPort.Hi,
		Protocol: r.Protocol.Value & r.Protocol.Mask,
		VLAN:     r.VLAN.Value & r.VLAN.Mask,
		TCPFlags: r.TCPFlags.Value & r.TCPFlags.Mask,
	}
	if !r.Src6.IsWildcard() || !r.Dst6.IsWildcard() {
		h.Family = fivetuple.FamilyIPv6
		h.SrcIP6 = r.Src6.Canonical().Addr
		h.DstIP6 = r.Dst6.Canonical().Addr
	} else {
		h.SrcIP = r.SrcPrefix.Addr
		h.DstIP = r.DstPrefix.Addr
	}
	return h
}

// decodeFuzzHeader maps fuzzHdrBytes bytes to one header.
func decodeFuzzHeader(b []byte) fivetuple.Header {
	return fivetuple.Header{
		SrcIP:    fivetuple.IPv4(fuzzU32(b[0:])),
		DstIP:    fivetuple.IPv4(fuzzU32(b[4:])),
		SrcPort:  fuzzU16(b[8:]),
		DstPort:  fuzzU16(b[10:]),
		Protocol: b[12],
	}
}

// fuzzTopology is the replicated/sharded serving topology a differential run
// drives beside the plain paths: replica count of the serving fleet and the
// rule-space shard geometry.
type fuzzTopology struct {
	replicas    int
	shards      int
	partitionBy string
}

// defaultTopology is the deterministic topology the non-fuzz runners use.
func defaultTopology() fuzzTopology {
	return fuzzTopology{replicas: 3, shards: 4, partitionBy: "protocol"}
}

// decodeFuzzTopology derives a random-but-valid topology from the fuzz input,
// so the fuzzer explores replica counts in [2,5], shard counts in [2,9] and
// both partition strategies.
func decodeFuzzTopology(data []byte) fuzzTopology {
	var a, b, c byte
	for i, v := range data {
		switch i % 3 {
		case 0:
			a ^= v
		case 1:
			b ^= v
		default:
			c ^= v
		}
	}
	topo := fuzzTopology{replicas: 2 + int(a)%4, shards: 2 + int(b)%8, partitionBy: "protocol"}
	if c&1 == 1 {
		topo.partitionBy = "src-byte"
	}
	return topo
}

// differentialPaths builds one classifier per selectable engine of both
// tiers plus one cache-enabled classifier per tier, all in exact
// (cross-product) combination mode, with the rule set installed — and, on
// top, the replicated-fleet and rule-space-sharded serving paths of the given
// topology (separately and combined), which must stay bit-identical to the
// unsharded single-snapshot classifier.
func differentialPaths(t testing.TB, rs *fivetuple.RuleSet, topo fuzzTopology) map[string]*core.Classifier {
	t.Helper()
	// Paths whose engine does not declare the workload's required dimensions
	// are skipped: the core would (correctly) refuse the install. At least the
	// linear engine declares every dimension, so no workload runs path-less.
	need := fivetuple.RequiredDims(rs.Rules())
	covers := func(name string) bool { return engine.Dims(name).Covers(need) }
	paths := make(map[string]*core.Classifier)
	build := func(label string, cfg core.Config) {
		c, err := core.New(cfg)
		if err != nil {
			t.Fatalf("building %s classifier: %v", label, err)
		}
		if _, err := c.InstallRuleSet(rs); err != nil {
			t.Fatalf("installing %d rules on %s: %v", rs.Len(), label, err)
		}
		paths[label] = c
	}
	for _, name := range engine.SelectableNames() {
		if covers(name) {
			build(name, bench.EngineConfig(name))
		}
	}
	// The cache front must be transparent over both tiers; the second lookup
	// pass below is served from the cache.
	if covers("mbt") {
		build("mbt+cache", bench.CachedEngineConfig("mbt", 4, 4096))

		// Replicated fleet: every publish fans out to per-worker replicas with
		// private caches; lookups rotate over replicas, so both passes cross
		// replica boundaries.
		repl := bench.CachedEngineConfig("mbt", 4, 4096)
		repl.Replicas = topo.replicas
		build(fmt.Sprintf("mbt+replicas=%d", topo.replicas), repl)

		// Rule-space partitioning on both tiers: the steered shard's first
		// match must be the global first match.
		shardedField := bench.EngineConfig("mbt")
		shardedField.Shards = topo.shards
		shardedField.PartitionBy = topo.partitionBy
		build(fmt.Sprintf("mbt+shards=%d/%s", topo.shards, topo.partitionBy), shardedField)
	}
	if covers("hypercuts") {
		build("hypercuts+cache", bench.CachedEngineConfig("hypercuts", 4, 4096))
		shardedPacket := bench.EngineConfig("hypercuts")
		shardedPacket.Shards = topo.shards
		shardedPacket.PartitionBy = topo.partitionBy
		build(fmt.Sprintf("hypercuts+shards=%d/%s", topo.shards, topo.partitionBy), shardedPacket)

		// Everything at once: replicated fleet over a sharded, cached table.
		combined := bench.CachedEngineConfig("hypercuts", 4, 4096)
		combined.Replicas = topo.replicas
		combined.Shards = topo.shards
		combined.PartitionBy = topo.partitionBy
		build(fmt.Sprintf("hypercuts+replicas=%d+shards=%d/%s", topo.replicas, topo.shards, topo.partitionBy), combined)
	}
	// The linear engine declares AllDims, so extended workloads always have a
	// sharded/replicated path beside the plain one.
	if need != 0 && covers("linear") {
		shardedLinear := bench.EngineConfig("linear")
		shardedLinear.Shards = topo.shards
		shardedLinear.PartitionBy = topo.partitionBy
		build(fmt.Sprintf("linear+shards=%d/%s", topo.shards, topo.partitionBy), shardedLinear)
		repl := bench.EngineConfig("linear")
		repl.Replicas = topo.replicas
		build(fmt.Sprintf("linear+replicas=%d", topo.replicas), repl)
	}
	return paths
}

// runDifferential asserts that every path agrees with the linear oracle on
// every header — match flag, rule priority, action and action argument — on
// a cold pass and on a warm (cache-hitting) pass, using the default
// replicated/sharded topology.
func runDifferential(t testing.TB, rules []fivetuple.Rule, headers []fivetuple.Header) {
	t.Helper()
	runDifferentialTopo(t, rules, headers, defaultTopology())
}

// runDifferentialTopo is runDifferential with an explicit serving topology.
// Besides the anonymous Lookup path (which rotates over fleet replicas), each
// pass also serves every header through a worker-pinned Reader, so replica
// selection by worker id is certified against the oracle too.
func runDifferentialTopo(t testing.TB, rules []fivetuple.Rule, headers []fivetuple.Header, topo fuzzTopology) {
	t.Helper()
	rs := fivetuple.NewRuleSet("differential", rules)
	paths := differentialPaths(t, rs, topo)
	var refs []core.ActionRef
	for label, c := range paths {
		for pass := 0; pass < 2; pass++ {
			reader := c.Reader(pass)
			for i, h := range headers {
				wantIdx, wantOK := rs.Classify(h)
				got := c.Lookup(h)
				gotReader := reader.Lookup(h)
				for _, res := range []struct {
					path string
					got  core.Result
				}{{"lookup", got}, {"reader", gotReader}} {
					if res.got.Matched != wantOK {
						t.Fatalf("%s %s pass %d header %d (%s): matched = %v, oracle says %v",
							label, res.path, pass, i, h, res.got.Matched, wantOK)
					}
					if !wantOK {
						continue
					}
					want := rs.Rule(wantIdx)
					if res.got.Priority != wantIdx || res.got.Action != want.Action || res.got.ActionArg != want.ActionArg {
						t.Fatalf("%s %s pass %d header %d (%s): got priority %d action %v/%d, oracle rule %d (%s) action %v/%d",
							label, res.path, pass, i, h, res.got.Priority, res.got.Action, res.got.ActionArg,
							wantIdx, want, want.Action, want.ActionArg)
					}
				}

				// Multi-action semantics: the full ordered action list must
				// equal the ClassifyAll reference, on the anonymous path and
				// the worker-pinned reader alike, and refs[0] must agree with
				// the first-match verdict above.
				wantAll := rs.ClassifyAll(h)
				refs, _ = reader.LookupAllInto(refs, h)
				checkActionRefs(t, label, "reader-all", pass, i, h, rs, wantAll, refs)
				gotAll, _ := c.LookupAll(h)
				checkActionRefs(t, label, "lookup-all", pass, i, h, rs, wantAll, gotAll)
				if wantOK && len(gotAll) > 0 && gotAll[0].Priority != wantIdx {
					t.Fatalf("%s pass %d header %d (%s): LookupAll[0] priority %d disagrees with Lookup priority %d",
						label, pass, i, h, gotAll[0].Priority, wantIdx)
				}
			}
		}
	}
}

// checkActionRefs asserts one multi-action result list equals the ClassifyAll
// oracle's index list entry by entry: rule identity (priority), action, action
// argument and terminality, in strict priority order.
func checkActionRefs(t testing.TB, label, path string, pass, hdr int, h fivetuple.Header, rs *fivetuple.RuleSet, want []int, got []core.ActionRef) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %s pass %d header %d (%s): %d action refs, oracle says %d (%v vs %v)",
			label, path, pass, hdr, h, len(got), len(want), got, want)
	}
	for j, idx := range want {
		r := rs.Rule(idx)
		ref := got[j]
		if ref.Priority != idx || ref.Action != r.Action || ref.ActionArg != r.ActionArg || ref.Terminal == r.NonTerminating {
			t.Fatalf("%s %s pass %d header %d (%s): action ref %d = %+v, oracle rule %d (%s)",
				label, path, pass, hdr, h, j, ref, idx, r)
		}
	}
}

// FuzzDifferentialLookup drives random rule sets and headers through all
// seven engines and both cache-enabled paths, asserting byte-identical
// verdicts versus the linear oracle. CI runs it as a smoke pass
// (-fuzz=FuzzDifferentialLookup -fuzztime=30s); the corpus below seeds
// structurally interesting shapes.
func FuzzDifferentialLookup(f *testing.F) {
	// Seeds: a tiny one-rule workload, port-boundary patterns, wide prefixes
	// with duplicates, and a spread of random-looking bytes.
	f.Add([]byte{0, 0,
		10, 0, 0, 1, 32, 192, 168, 0, 1, 24, 0, 0, 255, 255, 0, 80, 0, 80, 6, 0,
		10, 0, 0, 1, 192, 168, 0, 99, 1, 1, 0, 80, 6})
	f.Add([]byte{3, 4,
		1, 2, 3, 4, 16, 5, 6, 7, 8, 0, 255, 255, 255, 255, 0, 0, 0, 0, 17, 1,
		1, 2, 3, 4, 16, 5, 6, 7, 8, 0, 255, 255, 255, 255, 0, 0, 0, 0, 17, 1,
		9, 9, 9, 9, 8, 7, 7, 7, 7, 33, 0, 1, 255, 254, 128, 0, 255, 255, 6, 0,
		1, 2, 200, 4, 5, 6, 7, 8, 255, 255, 255, 255, 17,
		9, 9, 1, 1, 7, 7, 2, 2, 0, 0, 65, 66, 6})
	f.Add([]byte{255, 255, 100, 101, 102, 103, 104, 105, 106, 107, 108, 109,
		110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121,
		130, 131, 132, 133, 134, 135, 136, 137, 138, 139, 140})
	// Extension-dimension seeds: b[19] bits switch on IPv6 prefixes +
	// non-terminating (18 = 2|16) and VLAN + TCP flags + non-terminating
	// (28 = 4|8|16), steering the smoke pass through the extended decode
	// paths and the dims-gated engine selection.
	f.Add([]byte{1, 0,
		10, 0, 0, 1, 32, 192, 168, 0, 1, 24, 0, 0, 255, 255, 0, 80, 0, 80, 6, 18,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
		10, 0, 0, 1, 192, 168, 0, 99, 1, 1, 0, 80, 6})
	f.Add([]byte{0, 0,
		1, 2, 3, 4, 16, 5, 6, 7, 8, 0, 255, 255, 255, 255, 0, 0, 0, 0, 6, 28,
		1, 2, 3, 4, 5, 6, 7, 8, 255, 255, 255, 255, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		rules, headers := decodeDifferentialInput(data)
		if len(rules) == 0 || len(headers) == 0 {
			t.Skip("input too short to decode a workload")
		}
		// The serving topology (replica count, shard count, partition
		// strategy) is fuzz-driven too, so random topologies are explored
		// alongside random workloads.
		runDifferentialTopo(t, rules, headers, decodeFuzzTopology(data))
	})
}

// TestDifferentialEngines is the seeded deterministic corpus runner: the
// differential property is checked on generated ClassBench-style sets and on
// hand-built edge cases (max-port boundaries, duplicate rules, wildcard
// stacks, adjacent prefixes) on every test run.
func TestDifferentialEngines(t *testing.T) {
	t.Run("generated", func(t *testing.T) {
		for _, class := range []classbench.Class{classbench.ACL, classbench.FW, classbench.IPC} {
			t.Run(class.String(), func(t *testing.T) {
				rs := classbench.Generate(classbench.Config{Class: class, Rules: 150, Seed: int64(class) * 31})
				trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
					Packets: 300, Seed: int64(class) * 17, MatchFraction: 0.85, Locality: 0.3,
				})
				runDifferential(t, rs.Rules(), trace)
			})
		}
	})

	// Generated extended-dimension workload: IPv6 prefixes, VLAN tags,
	// TCP-flag matches and non-terminating rules mixed into one ACL set. Only
	// dimension-covering engines are built for it (differentialPaths gates on
	// the registry), and every lookup is also checked under multi-action
	// semantics against ClassifyAll.
	t.Run("generated-extended", func(t *testing.T) {
		rs := classbench.Generate(classbench.Config{
			Class: classbench.ACL, Rules: 120, Seed: 77,
			IPv6Fraction: 0.4, VLANFraction: 0.25, TCPFlagFraction: 0.25, NonTerminatingFraction: 0.3,
		})
		trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
			Packets: 250, Seed: 78, MatchFraction: 0.9,
		})
		runDifferential(t, rs.Rules(), trace)
	})

	prefix := fivetuple.MustParsePrefix
	exact := fivetuple.ExactPort
	ports := func(lo, hi uint16) fivetuple.PortRange { return fivetuple.PortRange{Lo: lo, Hi: hi} }
	wildPorts := fivetuple.WildcardPortRange()
	rule := func(src, dst string, sp, dp fivetuple.PortRange, proto fivetuple.ProtocolMatch, arg uint32) fivetuple.Rule {
		return fivetuple.Rule{
			SrcPrefix: prefix(src), DstPrefix: prefix(dst),
			SrcPort: sp, DstPort: dp, Protocol: proto,
			Action: fivetuple.ActionForward, ActionArg: arg,
		}
	}
	tcp := fivetuple.ExactProtocol(fivetuple.ProtoTCP)
	wild := fivetuple.WildcardProtocol()

	edgeCases := []struct {
		name    string
		rules   []fivetuple.Rule
		headers []fivetuple.Header
	}{
		{
			name: "max-port-boundaries",
			rules: []fivetuple.Rule{
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, exact(65535), tcp, 0),
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, ports(65534, 65535), tcp, 1),
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, exact(0), tcp, 2),
				rule("0.0.0.0/0", "0.0.0.0/0", ports(0, 0), wildPorts, wild, 3),
			},
			headers: []fivetuple.Header{
				{DstPort: 65535, Protocol: fivetuple.ProtoTCP},
				{DstPort: 65534, Protocol: fivetuple.ProtoTCP},
				{DstPort: 0, Protocol: fivetuple.ProtoTCP},
				{SrcPort: 65535, DstPort: 1, Protocol: fivetuple.ProtoUDP},
				{SrcPort: 0, DstPort: 9, Protocol: fivetuple.ProtoGRE},
			},
		},
		{
			name: "duplicate-rules-distinct-priorities",
			rules: []fivetuple.Rule{
				rule("10.0.0.0/8", "0.0.0.0/0", wildPorts, exact(80), tcp, 0),
				rule("10.0.0.0/8", "0.0.0.0/0", wildPorts, exact(80), tcp, 1),
				rule("10.0.0.0/8", "0.0.0.0/0", wildPorts, exact(80), tcp, 2),
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, wild, 3),
			},
			headers: []fivetuple.Header{
				{SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstPort: 80, Protocol: fivetuple.ProtoTCP},
				{SrcIP: fivetuple.MustParseIPv4("11.1.2.3"), DstPort: 80, Protocol: fivetuple.ProtoTCP},
			},
		},
		{
			name: "adjacent-prefix-boundaries",
			rules: []fivetuple.Rule{
				rule("255.255.255.255/32", "0.0.0.0/0", wildPorts, wildPorts, wild, 0),
				rule("255.255.255.254/31", "0.0.0.0/0", wildPorts, wildPorts, wild, 1),
				rule("128.0.0.0/1", "0.0.0.0/0", wildPorts, wildPorts, wild, 2),
				rule("0.0.0.0/32", "0.0.0.0/0", wildPorts, wildPorts, wild, 3),
				rule("10.0.255.255/32", "10.1.0.0/16", wildPorts, wildPorts, wild, 4),
			},
			headers: []fivetuple.Header{
				{SrcIP: fivetuple.MustParseIPv4("255.255.255.255"), Protocol: fivetuple.ProtoTCP},
				{SrcIP: fivetuple.MustParseIPv4("255.255.255.254"), Protocol: fivetuple.ProtoTCP},
				{SrcIP: fivetuple.MustParseIPv4("128.0.0.0"), Protocol: fivetuple.ProtoUDP},
				{SrcIP: 0, Protocol: fivetuple.ProtoUDP},
				{SrcIP: fivetuple.MustParseIPv4("10.0.255.255"), DstIP: fivetuple.MustParseIPv4("10.1.2.3")},
			},
		},
		{
			name: "protocol-zero-vs-wildcard",
			rules: []fivetuple.Rule{
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, fivetuple.ExactProtocol(0), 0),
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, wild, 1),
			},
			headers: []fivetuple.Header{
				{Protocol: 0},
				{Protocol: 255},
				{Protocol: fivetuple.ProtoTCP},
			},
		},
		{
			name: "single-wildcard-rule",
			rules: []fivetuple.Rule{
				rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, wild, 0),
			},
			headers: []fivetuple.Header{
				{},
				{SrcIP: ^fivetuple.IPv4(0), DstIP: ^fivetuple.IPv4(0), SrcPort: 65535, DstPort: 65535, Protocol: 255},
			},
		},
	}
	for _, tc := range edgeCases {
		t.Run(tc.name, func(t *testing.T) {
			runDifferential(t, tc.rules, tc.headers)
		})
	}

	// Extended-dimension edge cases: hand-built IPv6 boundary prefixes, VLAN
	// and TCP-flag masks, dual-family wildcards, and multi-action stacks whose
	// rule order is deliberately unsorted relative to priority.
	t.Run("extended-dimensions", func(t *testing.T) {
		prefix6 := fivetuple.MustParsePrefix6
		v6hdr := func(src, dst string, dstPort uint16) fivetuple.Header {
			return fivetuple.Header{
				Family: fivetuple.FamilyIPv6,
				SrcIP6: fivetuple.MustParseIPv6(src), DstIP6: fivetuple.MustParseIPv6(dst),
				SrcPort: 1234, DstPort: dstPort, Protocol: fivetuple.ProtoTCP,
			}
		}
		extCases := []struct {
			name    string
			rules   []fivetuple.Rule
			headers []fivetuple.Header
		}{
			{
				name: "ipv6-adjacent-prefixes",
				rules: []fivetuple.Rule{
					{Src6: prefix6("2001:db8::/128"), SrcPort: wildPorts, DstPort: wildPorts, Protocol: wild, Action: fivetuple.ActionForward, ActionArg: 0},
					{Src6: prefix6("2001:db8::/64"), SrcPort: wildPorts, DstPort: wildPorts, Protocol: wild, Action: fivetuple.ActionForward, ActionArg: 1},
					{Src6: prefix6("2001:db8::/32"), Dst6: prefix6("2001:db8:ff::/48"), SrcPort: wildPorts, DstPort: wildPorts, Protocol: wild, Action: fivetuple.ActionForward, ActionArg: 2},
					// The /65 straddles the Hi/Lo word split of the address
					// representation.
					{Src6: prefix6("2001:db8:0:0:8000::/65"), SrcPort: wildPorts, DstPort: wildPorts, Protocol: wild, Action: fivetuple.ActionForward, ActionArg: 3},
					// Dual-family wildcard default: matches v4 and v6 headers.
					rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, wild, 4),
				},
				headers: []fivetuple.Header{
					v6hdr("2001:db8::", "2001:db8:ff::1", 80),
					v6hdr("2001:db8::1", "::1", 80),
					v6hdr("2001:db8:0:0:8000::1", "::1", 80),
					v6hdr("2001:db8:0:0:7fff:ffff:ffff:ffff", "::1", 80),
					v6hdr("2001:db9::1", "::1", 80),
					{SrcIP: fivetuple.MustParseIPv4("10.0.0.1"), Protocol: fivetuple.ProtoTCP},
				},
			},
			{
				name: "vlan-and-flag-masks",
				rules: []fivetuple.Rule{
					{SrcPort: wildPorts, DstPort: wildPorts, Protocol: tcp, VLAN: fivetuple.ExactVLAN(100), Action: fivetuple.ActionForward, ActionArg: 0},
					{SrcPort: wildPorts, DstPort: wildPorts, Protocol: tcp, TCPFlags: fivetuple.TCPFlagMatch{Value: fivetuple.TCPSyn, Mask: fivetuple.TCPSyn | fivetuple.TCPAck}, Action: fivetuple.ActionForward, ActionArg: 1},
					{SrcPort: wildPorts, DstPort: wildPorts, Protocol: tcp, VLAN: fivetuple.VLANMatch{Value: 0x0F0, Mask: 0x0F0}, Action: fivetuple.ActionForward, ActionArg: 2},
					rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, wild, 3),
				},
				headers: []fivetuple.Header{
					{Protocol: fivetuple.ProtoTCP, VLAN: 100, TCPFlags: fivetuple.TCPSyn},
					{Protocol: fivetuple.ProtoTCP, VLAN: 0x0F7, TCPFlags: fivetuple.TCPSyn | fivetuple.TCPAck},
					{Protocol: fivetuple.ProtoTCP, VLAN: 0, TCPFlags: fivetuple.TCPSyn},
					{Protocol: fivetuple.ProtoTCP, VLAN: 101, TCPFlags: fivetuple.TCPAck},
					{Protocol: fivetuple.ProtoUDP},
				},
			},
			{
				name: "multi-action-stack",
				rules: []fivetuple.Rule{
					// Mirror-then-forward: two non-terminating observers above
					// a terminating verdict, with a dead rule below it.
					{SrcPrefix: prefix("10.0.0.0/8"), SrcPort: wildPorts, DstPort: wildPorts, Protocol: wild, NonTerminating: true, Action: fivetuple.ActionController, ActionArg: 0},
					{SrcPrefix: prefix("10.0.0.0/8"), SrcPort: wildPorts, DstPort: fivetuple.PortRange{Lo: 80, Hi: 80}, Protocol: wild, NonTerminating: true, Action: fivetuple.ActionModify, ActionArg: 7},
					rule("10.0.0.0/8", "0.0.0.0/0", wildPorts, wildPorts, wild, 9),
					rule("10.0.0.0/8", "0.0.0.0/0", wildPorts, wildPorts, wild, 10),
					{SrcPort: wildPorts, DstPort: wildPorts, Protocol: wild, NonTerminating: true, Action: fivetuple.ActionController, ActionArg: 99},
				},
				headers: []fivetuple.Header{
					{SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstPort: 80, Protocol: fivetuple.ProtoTCP},
					{SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstPort: 81, Protocol: fivetuple.ProtoTCP},
					// Matches only the trailing non-terminating observer: the
					// action list is non-empty while the first-match verdict
					// reports its (non-terminal) action.
					{SrcIP: fivetuple.MustParseIPv4("11.1.2.3"), DstPort: 80, Protocol: fivetuple.ProtoTCP},
				},
			},
		}
		for _, tc := range extCases {
			t.Run(tc.name, func(t *testing.T) {
				runDifferential(t, tc.rules, tc.headers)
			})
		}
	})

	// Shard-boundary corpus: rules built to stress the rule-space partitioner
	// — wildcard protocols (replicate into every shard), prefixes straddling
	// the partition byte (/7 and /9 around a top-byte boundary) and identical
	// match conditions at distinct priorities that replicate across shards.
	// Checked under both partition strategies.
	t.Run("shard-boundary", func(t *testing.T) {
		boundaryRules := []fivetuple.Rule{
			// Wildcard protocol + /7 source: covers every protocol shard and
			// two src-byte shards (top bytes 12 and 13).
			rule("12.0.0.0/7", "0.0.0.0/0", wildPorts, wildPorts, wild, 0),
			// /9 source: fully inside one top byte, exact protocol.
			rule("13.128.0.0/9", "0.0.0.0/0", wildPorts, wildPorts, tcp, 1),
			// Same match condition again at a lower priority: the duplicate
			// replicates into the same shard set and must lose on priority.
			rule("13.128.0.0/9", "0.0.0.0/0", wildPorts, wildPorts, tcp, 2),
			// /8 exactly on the partition byte.
			rule("14.0.0.0/8", "0.0.0.0/0", wildPorts, exact(53), fivetuple.ExactProtocol(fivetuple.ProtoUDP), 3),
			// Short /4 spanning sixteen top bytes with a wildcard protocol:
			// replicates into sixteen src-byte shards and every protocol
			// shard at once.
			rule("16.0.0.0/4", "0.0.0.0/0", wildPorts, wildPorts, wild, 4),
			// Default wildcard rule: replicates into every shard of either
			// strategy.
			rule("0.0.0.0/0", "0.0.0.0/0", wildPorts, wildPorts, wild, 5),
		}
		boundaryHeaders := []fivetuple.Header{
			{SrcIP: fivetuple.MustParseIPv4("12.0.0.1"), Protocol: fivetuple.ProtoTCP},
			{SrcIP: fivetuple.MustParseIPv4("13.255.0.1"), Protocol: fivetuple.ProtoTCP},
			{SrcIP: fivetuple.MustParseIPv4("13.127.255.255"), Protocol: fivetuple.ProtoTCP},
			{SrcIP: fivetuple.MustParseIPv4("13.128.0.0"), Protocol: fivetuple.ProtoTCP},
			{SrcIP: fivetuple.MustParseIPv4("14.0.0.1"), DstPort: 53, Protocol: fivetuple.ProtoUDP},
			{SrcIP: fivetuple.MustParseIPv4("14.0.0.1"), DstPort: 54, Protocol: fivetuple.ProtoUDP},
			{SrcIP: fivetuple.MustParseIPv4("17.0.0.1"), Protocol: 7},
			{SrcIP: fivetuple.MustParseIPv4("31.255.255.255"), Protocol: 6},
			{SrcIP: fivetuple.MustParseIPv4("32.0.0.0"), Protocol: 6},
			{SrcIP: fivetuple.MustParseIPv4("200.1.2.3"), Protocol: 255},
		}
		for _, topo := range []fuzzTopology{
			{replicas: 2, shards: 4, partitionBy: "protocol"},
			{replicas: 3, shards: 5, partitionBy: "src-byte"},
			{replicas: 2, shards: 256, partitionBy: "src-byte"},
		} {
			runDifferentialTopo(t, boundaryRules, boundaryHeaders, topo)
		}
	})

	// Fuzz-decoder determinism: the corpus runner also pushes the seed
	// inputs through the byte decoder so the fuzz entry point itself is
	// covered without -fuzz.
	t.Run("decoded-seeds", func(t *testing.T) {
		seeds := [][]byte{
			{0, 0, 10, 0, 0, 1, 32, 192, 168, 0, 1, 24, 0, 0, 255, 255, 0, 80, 0, 80, 6, 0,
				10, 0, 0, 1, 192, 168, 0, 99, 1, 1, 0, 80, 6},
			{255, 255, 100, 101, 102, 103, 104, 105, 106, 107, 108, 109,
				110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121,
				130, 131, 132, 133, 134, 135, 136, 137, 138, 139, 140},
		}
		for i, seed := range seeds {
			rules, headers := decodeDifferentialInput(seed)
			if len(rules) == 0 || len(headers) == 0 {
				t.Fatalf("seed %d does not decode to a workload", i)
			}
			runDifferential(t, rules, headers)
		}
	})
}

// TestDecodeDifferentialInputShapes pins the decoder's normalisation: port
// ranges come out ordered, prefix lengths in range, and short inputs yield
// nothing rather than panicking.
func TestDecodeDifferentialInputShapes(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, {1, 1}, {1, 1, 9, 9}} {
		rules, headers := decodeDifferentialInput(data)
		if len(rules) != 0 || len(headers) != 0 {
			t.Errorf("decode(%v) = %d rules / %d headers, want none", data, len(rules), len(headers))
		}
	}
	data := make([]byte, 2+maxFuzzRules*fuzzRuleBytes+maxFuzzHeaders*fuzzHdrBytes)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	data[0], data[1] = 255, 255 // ask for the maxima
	rules, headers := decodeDifferentialInput(data)
	if len(rules) == 0 || len(headers) == 0 {
		t.Fatal("full-length input decoded to an empty workload")
	}
	// Beyond the decoded headers, every extended-dimension rule contributes
	// one engineered header, so the header bound is the sum of both caps.
	if len(rules) > maxFuzzRules || len(headers) > maxFuzzHeaders+maxFuzzRules {
		t.Fatalf("decode exceeded caps: %d rules / %d headers", len(rules), len(headers))
	}
	for i, r := range rules {
		if r.SrcPort.Lo > r.SrcPort.Hi || r.DstPort.Lo > r.DstPort.Hi {
			t.Errorf("rule %d has an inverted port range: %s", i, r)
		}
		if r.SrcPrefix.Len > 32 || r.DstPrefix.Len > 32 {
			t.Errorf("rule %d has an out-of-range prefix length: %s", i, r)
		}
	}
	if fmt.Sprint(rules) != fmt.Sprint(func() []fivetuple.Rule { r, _ := decodeDifferentialInput(data); return r }()) {
		t.Error("decoder is not deterministic")
	}
}
