// The replicated-fleet scaling gate lives in the external test package so it
// can drive internal/bench.ThroughputSweep directly (the same driver the
// experiments binary uses).
package sdnpc_test

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"sdnpc/internal/bench"
	"sdnpc/internal/classbench"
)

// TestReplicatedScalingGate is the CI scaling gate behind
// scripts/check_scaling.sh: it runs ThroughputSweep at 1 worker and at
// NumCPU workers in replicated-fleet mode (one snapshot/cache replica per
// worker) beside the shared-pointer baseline, and fails when the replicated
// mode's NumCPU-worker speedup over its own 1-worker row falls below the
// floor. The floor defaults to 1.2x and can be overridden with
// SCALING_GATE_FLOOR for noisy or small runners.
//
// The gate is opt-in (SCALING_GATE=1): it is a timing assertion, so it
// belongs beside the benchmark regression job, not in every `go test` run.
func TestReplicatedScalingGate(t *testing.T) {
	if os.Getenv("SCALING_GATE") == "" {
		t.Skip("scaling gate is opt-in: set SCALING_GATE=1 (see scripts/check_scaling.sh)")
	}
	ncpu := runtime.NumCPU()
	if ncpu < 2 {
		t.Skip("replicated scaling needs more than one CPU")
	}
	floor := 1.2
	if s := os.Getenv("SCALING_GATE_FLOOR"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 {
			t.Fatalf("invalid SCALING_GATE_FLOOR %q", s)
		}
		floor = f
	}

	w := bench.NewWorkload(classbench.ACL, classbench.Size1K, 20000)
	rows, err := bench.ThroughputSweep(w, bench.ThroughputOptions{
		Engines:          []string{"mbt"},
		Workers:          []int{1, ncpu},
		PacketsPerWorker: 30000,
		Replicated:       true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var sharedTop, replTop *bench.ThroughputRow
	for i := range rows {
		r := &rows[i]
		if r.Workers != ncpu {
			continue
		}
		if r.Replicas > 0 {
			replTop = r
		} else {
			sharedTop = r
		}
	}
	if replTop == nil || sharedTop == nil {
		t.Fatalf("sweep did not produce both a shared and a replicated %d-worker row: %+v", ncpu, rows)
	}

	t.Logf("shared-pointer @%d workers: %.0f pkts/s (%.2fx vs 1 worker)",
		ncpu, sharedTop.PacketsPerSec, sharedTop.SpeedupVs1)
	t.Logf("replicated (%d replicas) @%d workers: %.0f pkts/s (%.2fx vs 1 worker, worker spread %.0f..%.0f pkts/s)",
		replTop.Replicas, ncpu, replTop.PacketsPerSec, replTop.SpeedupVs1,
		replTop.MinWorkerPPS, replTop.MaxWorkerPPS)

	if replTop.SpeedupVs1 < floor {
		t.Fatalf("replicated-fleet speedup at %d workers is %.2fx, below the %.2fx floor",
			ncpu, replTop.SpeedupVs1, floor)
	}
}
