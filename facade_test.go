package sdnpc

import (
	"sort"
	"testing"
)

// TestFacadeUpdatePlane exercises the incremental update surface end to end:
// WithUpdatePolicy selects the delta path, Apply drains a generated churn
// trace, and UpdateStats reports the delta/rebuild split with a populated
// latency histogram.
func TestFacadeUpdatePlane(t *testing.T) {
	c, err := New(WithEngine("hypercuts"), WithUpdatePolicy(10000, 0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rs := MustGenerateRuleSet("acl", "1k")
	if _, err := c.InsertAll(rs); err != nil {
		t.Fatalf("InsertAll: %v", err)
	}
	ops := GenerateUpdateTrace(rs, UpdateTraceOptions{Ops: 40, Seed: 9, Locality: 0.5})
	if len(ops) != 40 {
		t.Fatalf("GenerateUpdateTrace produced %d ops, want 40", len(ops))
	}
	reports, errs, err := c.Apply(ops)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(reports) != len(ops) || len(errs) != len(ops) {
		t.Fatalf("Apply returned %d reports / %d errs for %d ops", len(reports), len(errs), len(ops))
	}
	for i, opErr := range errs {
		if opErr != nil {
			t.Fatalf("op %d failed: %v", i, opErr)
		}
	}
	stats := c.UpdateStats()
	if stats.DeltasApplied != 40 || stats.DeltaPublishes != 1 {
		t.Errorf("UpdateStats = %+v, want one delta publish carrying all 40 ops", stats)
	}
	if stats.Rebuilds != 1 { // the bulk InsertAll
		t.Errorf("Rebuilds = %d, want exactly the bulk install's", stats.Rebuilds)
	}
	if stats.PublishLatency.Total() != 2 || stats.PublishLatency.P99() < stats.PublishLatency.P50() {
		t.Errorf("publish latency histogram inconsistent: %+v", stats.PublishLatency)
	}

	// The delta-churned classifier must still agree with a linear best-first
	// scan over the live rules (which keep their original priorities, so the
	// renumbering RuleSet oracle does not apply here).
	live := c.Rules()
	sort.SliceStable(live, func(i, j int) bool { return live[i].Priority < live[j].Priority })
	for _, h := range GenerateTrace(NewRuleSet("probe", live), TraceOptions{Packets: 300, Seed: 10}) {
		wantIdx := -1
		for i, r := range live {
			if r.Matches(h) {
				wantIdx = i
				break
			}
		}
		got := c.Lookup(h)
		if got.Matched != (wantIdx >= 0) {
			t.Fatalf("after churn: Lookup(%s) matched %v, oracle %v", h, got.Matched, wantIdx >= 0)
		}
		if wantIdx >= 0 && got.Priority != live[wantIdx].Priority {
			t.Fatalf("after churn: Lookup(%s) priority %d, oracle %d", h, got.Priority, live[wantIdx].Priority)
		}
	}
}

func TestFacadeRoundTrip(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Engine() != "mbt" {
		t.Errorf("default engine = %q, want mbt", c.Engine())
	}

	web := NewRule(0).To("203.0.113.0/24").DstPort(443).Proto(TCP).Forward(1).MustBuild()
	dns := NewRule(1).From("10.0.0.0/8").DstPort(53).Proto(UDP).Punt().MustBuild()
	def := WildcardRule(2, Drop)
	for _, r := range []Rule{web, dns, def} {
		if _, err := c.Insert(r); err != nil {
			t.Fatalf("Insert(%s): %v", r, err)
		}
	}
	if c.RuleCount() != 3 {
		t.Fatalf("RuleCount = %d, want 3", c.RuleCount())
	}

	checkVerdicts := func(engineName string) {
		t.Helper()
		hit := c.Lookup(MustParseHeader("198.51.100.7", 50000, "203.0.113.10", 443, TCP))
		if !hit.Matched || hit.Action != Forward || hit.Priority != 0 {
			t.Fatalf("%s: web lookup = %+v", engineName, hit)
		}
		punt := c.Lookup(MustParseHeader("10.1.2.3", 5353, "8.8.8.8", 53, UDP))
		if !punt.Matched || punt.Action != Controller || punt.Priority != 1 {
			t.Fatalf("%s: dns lookup = %+v", engineName, punt)
		}
		miss := c.Lookup(MustParseHeader("192.0.2.1", 1, "192.0.2.2", 2, GRE))
		if !miss.Matched || miss.Action != Drop || miss.Priority != 2 {
			t.Fatalf("%s: default lookup = %+v", engineName, miss)
		}
	}
	for _, name := range Engines() {
		if err := c.SelectEngine(name); err != nil {
			t.Fatalf("SelectEngine(%s): %v", name, err)
		}
		if c.Engine() != name {
			t.Fatalf("Engine() = %q after selecting %q", c.Engine(), name)
		}
		checkVerdicts(name)
		if c.ThroughputGbps(40) <= 0 || c.LookupsPerSecond() <= 0 {
			t.Errorf("%s: non-positive modelled throughput", name)
		}
	}

	if _, err := c.Delete(dns); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if c.RuleCount() != 2 {
		t.Errorf("RuleCount after delete = %d, want 2", c.RuleCount())
	}
	res := c.Lookup(MustParseHeader("10.1.2.3", 5353, "8.8.8.8", 53, UDP))
	if !res.Matched || res.Action != Drop {
		t.Errorf("after delete, dns falls to the default rule: %+v", res)
	}
}

func TestFacadeOptions(t *testing.T) {
	if _, err := New(WithEngine("no-such-engine")); err == nil {
		t.Error("unknown engine should fail")
	}
	c, err := New(WithEngine("bst"), WithSingleProbe(), WithClock(200e6))
	if err != nil {
		t.Fatalf("New with options: %v", err)
	}
	if c.Engine() != "bst" {
		t.Errorf("engine = %q, want bst", c.Engine())
	}
}

func TestFacadeCacheOption(t *testing.T) {
	c, err := New(WithCache(4, 1024))
	if err != nil {
		t.Fatalf("New(WithCache): %v", err)
	}
	if _, ok := c.CacheStats(); !ok {
		t.Fatal("CacheStats reports disabled after WithCache")
	}
	rule := NewRule(0).From("10.0.0.0/8").DstPort(443).Proto(TCP).Forward(1).MustBuild()
	if _, err := c.Insert(rule); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	h := MustParseHeader("10.1.1.1", 1000, "192.0.2.1", 443, TCP)
	first := c.Lookup(h)
	second := c.Lookup(h)
	if first != second {
		t.Errorf("cached lookup %+v differs from the filling one %+v", second, first)
	}
	stats, _ := c.CacheStats()
	if stats.Hits == 0 {
		t.Errorf("repeated lookup did not hit the cache: %+v", stats)
	}
	if rep := c.MemoryReport(); rep.CacheEntries == 0 || rep.CacheBits == 0 {
		t.Errorf("memory report omits the cache footprint: %+v entries / %d bits", rep.CacheEntries, rep.CacheBits)
	}
	if _, ok := MustNew().CacheStats(); ok {
		t.Error("CacheStats reports enabled without WithCache")
	}
	if _, err := New(WithCache(0, -1)); err == nil {
		t.Error("negative cache capacity should fail validation")
	}
}

func TestRuleBuilderErrors(t *testing.T) {
	if _, err := NewRule(0).From("not-a-prefix").Build(); err == nil {
		t.Error("bad source prefix should surface at Build")
	}
	if _, err := NewRule(0).SrcPorts(9, 3).Build(); err == nil {
		t.Error("inverted port range should surface at Build")
	}
	if _, err := ParseHeader("bad", 1, "203.0.113.1", 2, TCP); err == nil {
		t.Error("bad source address should fail")
	}
}

func TestWorkloadGeneration(t *testing.T) {
	rs, err := GenerateRuleSet("acl", "1k")
	if err != nil {
		t.Fatalf("GenerateRuleSet: %v", err)
	}
	if rs.Len() == 0 {
		t.Fatal("empty generated rule set")
	}
	if _, err := GenerateRuleSet("nope", "1k"); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := GenerateRuleSet("acl", "3k"); err == nil {
		t.Error("unknown size should fail")
	}
	trace := GenerateTrace(rs, TraceOptions{Packets: 100, Seed: 1})
	if len(trace) != 100 {
		t.Fatalf("trace length = %d, want 100", len(trace))
	}
}
