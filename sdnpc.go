// Package sdnpc is the public facade of the configurable SDN packet
// classifier (conf_socc_PerezYSS14): a label-based five-tuple classification
// architecture whose lookup algorithm is selected by name at run time.
//
// Two engine tiers share one registry. Field engines ("mbt", "bst",
// "segtrie", "rfc") serve one header dimension each and are combined through
// the paper's label method; whole-packet engines ("rfc-full", "dcfl",
// "hypercuts" — the multi-field baselines of the paper's Table I) answer the
// full five-tuple from one precomputed structure. Any selectable name works
// with WithEngine and Classifier.SelectEngine, so the trade-off between
// lookup speed, precomputed memory and update cost is run-time data.
//
// The package wraps the internal architecture model behind a small surface:
// a Classifier with insert/delete/lookup, a fluent Rule builder, and engine
// selection by registry name. Import it as
//
//	import "sdnpc"
//
// and see examples/quickstart and example_test.go for complete
// walk-throughs.
package sdnpc

import (
	"fmt"

	"sdnpc/internal/advisor"
	"sdnpc/internal/cache"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// Re-exported core types. The facade deliberately aliases rather than wraps
// these: they are plain data and the internal packages already keep them
// stable.
type (
	// Rule is one five-tuple classification rule. Build one with NewRule.
	Rule = fivetuple.Rule
	// RuleSet is an ordered collection of rules (priority = position).
	RuleSet = fivetuple.RuleSet
	// Header is the five-tuple of one packet.
	Header = fivetuple.Header
	// Result is the outcome of one lookup, including the data-plane cost
	// counters of the architecture model.
	Result = core.Result
	// BatchReport aggregates the accounting fields of one LookupBatch call.
	BatchReport = core.BatchReport
	// Stats accumulates data-plane counters across lookups and updates.
	Stats = core.Stats
	// UpdateReport describes the cost of one rule insertion or deletion.
	UpdateReport = core.UpdateReport
	// UpdateOp is one rule mutation inside an Apply batch.
	UpdateOp = core.UpdateOp
	// UpdateStats describes how rule-update publishes were served by the
	// packet tier's update plane: delta publishes versus full rebuilds, plus
	// the wall-clock publish-latency histogram.
	UpdateStats = core.UpdateStats
	// LookupCounters is the served-request summary of one classifier:
	// lookups answered and matches returned. See Classifier.LookupCounters.
	LookupCounters = core.LookupCounters
	// LatencyHistogram is the fixed-bucket publish-latency histogram inside
	// UpdateStats.
	LatencyHistogram = core.LatencyHistogram
	// MemoryReport breaks down the architecture's memory consumption.
	MemoryReport = core.MemoryReport
	// CacheStats reports the microflow cache's hit/miss/eviction counters.
	CacheStats = cache.Stats
	// Report is the one-call observability snapshot returned by
	// Classifier.Report: every counter and breakdown the five historical
	// accessors returned, assembled against one published snapshot.
	Report = core.Report
	// ReplicaReport is the per-replica slice of Report (see WithReplicas).
	ReplicaReport = core.ReplicaReport
	// ShardReport is the per-shard slice of Report (see WithShards).
	ShardReport = core.ShardReport
	// Action is a rule's forwarding action.
	Action = fivetuple.Action
	// ActionRef is one entry of a LookupAll result: a matching rule's
	// priority, action and terminality, in strict priority order.
	ActionRef = core.ActionRef
	// DimSet is a bitmask of the optional header dimensions a rule
	// constrains or an engine supports (IPv6, VLAN, TCP flags, ...).
	DimSet = fivetuple.DimSet
)

// TCP flag bits, for RuleBuilder.TCPFlags.
const (
	TCPFin = fivetuple.TCPFin
	TCPSyn = fivetuple.TCPSyn
	TCPRst = fivetuple.TCPRst
	TCPPsh = fivetuple.TCPPsh
	TCPAck = fivetuple.TCPAck
	TCPUrg = fivetuple.TCPUrg
	TCPEce = fivetuple.TCPEce
	TCPCwr = fivetuple.TCPCwr
)

// Rule actions.
const (
	Forward    = fivetuple.ActionForward
	Drop       = fivetuple.ActionDrop
	Modify     = fivetuple.ActionModify
	Group      = fivetuple.ActionGroup
	Controller = fivetuple.ActionController
)

// Well-known IP protocol numbers.
const (
	ICMP = fivetuple.ProtoICMP
	TCP  = fivetuple.ProtoTCP
	UDP  = fivetuple.ProtoUDP
	GRE  = fivetuple.ProtoGRE
	ESP  = fivetuple.ProtoESP
)

// Engines returns the names of every selectable engine across both tiers —
// the values accepted by WithEngine and Classifier.SelectEngine.
func Engines() []string { return engine.SelectableNames() }

// FieldEngines returns the names of the registered per-field IP-segment
// engines (the first tier).
func FieldEngines() []string { return engine.IPEngineNames() }

// PacketEngines returns the names of the registered whole-packet engines
// (the second tier).
func PacketEngines() []string { return engine.PacketEngineNames() }

// NewRuleSet builds a rule set from the given rules; rule priorities are
// rewritten to their position so the set is internally consistent.
func NewRuleSet(name string, rules []Rule) *RuleSet { return fivetuple.NewRuleSet(name, rules) }

// Option adjusts the classifier configuration.
type Option func(*core.Config)

// WithEngine selects the lookup engine by registered name, whichever tier it
// belongs to: a whole-packet engine name activates the packet tier, any
// other name selects the IP-segment field engine.
func WithEngine(name string) Option {
	return func(cfg *core.Config) {
		if isPacket, ok := engine.Selectable(name); ok && isPacket {
			cfg.PacketEngine = name
			return
		}
		cfg.IPEngine = name
	}
}

// WithSingleProbe selects the paper's single-probe HPML combination mode:
// fastest, but it can miss the highest-priority rule when label lists
// disagree. The default is the exact cross-product mode.
func WithSingleProbe() Option {
	return func(cfg *core.Config) { cfg.CombineMode = core.CombineHPML }
}

// WithClock sets the modelled clock frequency in Hz.
func WithClock(hz float64) Option {
	return func(cfg *core.Config) { cfg.ClockHz = hz }
}

// WithCache enables the sharded exact-match microflow cache in front of the
// lookup engines (both tiers): repeated five-tuples are answered without
// walking any classification structure, and every rule update or engine
// switch invalidates the whole cache in O(1) via snapshot generations.
// capacity is the total entry budget (rounded up to the sharded geometry);
// shards is the number of independently locked shards, rounded up to a power
// of two, with <= 0 selecting the default of 8.
func WithCache(shards, capacity int) Option {
	return func(cfg *core.Config) {
		cfg.CacheShards = shards
		cfg.CacheCapacity = capacity
	}
}

// WithUpdatePolicy tunes the packet tier's incremental update plane: an
// incremental engine (dcfl, hypercuts) absorbs single-rule updates as delta
// ops until either it has carried rebuildAfterDeltas of them since the last
// full build, or its structural degradation reaches degradationThreshold —
// then one publish pays an amortising rebuild. Zero values select the
// defaults (64 deltas, 0.5 degradation); rebuildAfterDeltas = 1 restores
// rebuild-on-every-update; a negative value disables either bound. Engines
// without delta support rebuild on every update regardless.
func WithUpdatePolicy(rebuildAfterDeltas int, degradationThreshold float64) Option {
	return func(cfg *core.Config) {
		cfg.RebuildAfterDeltas = rebuildAfterDeltas
		cfg.DegradationThreshold = degradationThreshold
	}
}

// WithReplicas enables the replicated serving fleet: every publish fans out
// to n per-worker replicas, each holding its own snapshot clone (and its own
// private microflow cache when WithCache is set), so pinned serving loops
// read only core-local memory instead of contending on one shared snapshot
// pointer. A publish is complete only when every replica has advanced — see
// Report().FleetGeneration. n <= 1 keeps the single shared snapshot.
func WithReplicas(n int) Option {
	return func(cfg *core.Config) { cfg.Replicas = n }
}

// WithShards enables rule-space partitioning: the rule table is split into n
// shards by the named partition strategy ("protocol", "src-byte", or "" for
// the default protocol byte), each shard installing only the rules it covers
// into its own smaller engines, and a one-byte pre-classifier steers every
// lookup to the single shard holding all rules that could match it —
// first-match results are bit-identical to the unsharded table. n <= 1 keeps
// the unsharded table.
func WithShards(n int, strategy string) Option {
	return func(cfg *core.Config) {
		cfg.Shards = n
		cfg.PartitionBy = strategy
	}
}

// Classifier is a configurable five-tuple packet classifier.
//
// It is safe for concurrent use. Lookups are served lock-free from an
// immutable snapshot of the data path held behind an atomic pointer; rule
// updates and engine switches build the next snapshot off to the side and
// swap it in atomically (RCU style). Any number of goroutines may call
// Lookup and LookupBatch while another inserts, deletes or switches
// engines; every result is consistent with either the pre-update or the
// post-update rule set, never a mixture.
type Classifier struct {
	inner *core.Classifier

	// tuner is the background auto-tuner (nil without WithAutoTune); Close
	// stops it.
	tuner *advisor.AutoTuner
}

// New creates a classifier with the paper's default geometry, adjusted by
// the given options.
func New(opts ...Option) (*Classifier, error) {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.AutoTune && cfg.SampleHeaders == 0 {
		// Auto-tuning without traffic samples would tune on synthetic
		// guesses; imply the sampler at its default capacity.
		cfg.SampleHeaders = core.DefaultSampleHeaders
	}
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	c := &Classifier{inner: inner}
	if cfg.AutoTune {
		c.tuner = advisor.NewAutoTuner(inner, advisor.AutoTunerOptions{Interval: cfg.AutoTuneInterval})
		c.tuner.Start()
	}
	return c, nil
}

// MustNew is like New but panics on error.
func MustNew(opts ...Option) *Classifier {
	c, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Insert installs one rule.
func (c *Classifier) Insert(r Rule) (UpdateReport, error) { return c.inner.InsertRule(r) }

// InsertAll installs every rule of the set in priority order.
func (c *Classifier) InsertAll(rs *RuleSet) (UpdateReport, error) { return c.inner.InstallRuleSet(rs) }

// Delete removes one installed rule, identified by its field matches and
// priority.
func (c *Classifier) Delete(r Rule) (UpdateReport, error) { return c.inner.DeleteRule(r) }

// Apply applies a mixed, ordered batch of insertions and deletions as one
// atomic publish — the amortised path for streamed flow-mod downloads. Ops
// are independent: a cleanly failed op is skipped with its error at its
// index in errs while the rest still apply; err is non-nil only when the
// whole batch was abandoned unpublished.
func (c *Classifier) Apply(ops []UpdateOp) (reports []UpdateReport, errs []error, err error) {
	return c.inner.ApplyUpdates(ops)
}

// Lookup classifies one packet header and returns the highest-priority
// matching rule's action together with the model's cost counters. It is
// lock-free and safe to call from any number of goroutines.
func (c *Classifier) Lookup(h Header) Result { return c.inner.Lookup(h) }

// LookupBatch classifies a batch of headers against one consistent snapshot
// of the rule set and returns one Result per header, in order. Batching
// amortises the per-call overhead of the serving path and guarantees the
// whole batch is judged by the same rule set even when updates land midway.
// Use SummarizeBatch for the batch-level accounting totals.
func (c *Classifier) LookupBatch(hs []Header) []Result { return c.inner.LookupBatch(hs) }

// LookupAll classifies one packet header under multi-action semantics: it
// returns every matching rule's action in strict priority order, up to and
// including the first terminating match, together with the first-match
// Result (refs[0] always agrees with Lookup's verdict). Non-terminating
// rules (RuleBuilder.NonTerminating) contribute their action and let
// evaluation continue — mirroring, logging or counting beside a forwarding
// verdict.
func (c *Classifier) LookupAll(h Header) ([]ActionRef, Result) { return c.inner.LookupAll(h) }

// LookupAllInto is LookupAll reusing the caller's slice, for allocation-free
// serving loops: refs are appended to dst[:0] and the (possibly regrown)
// slice is returned.
func (c *Classifier) LookupAllInto(dst []ActionRef, h Header) ([]ActionRef, Result) {
	return c.inner.LookupAllInto(dst, h)
}

// EngineDims returns the optional header dimensions the named selectable
// engine declares support for. Installing a rule that constrains a
// dimension outside the active engine's set fails with an error rather than
// silently misclassifying.
func EngineDims(name string) DimSet { return engine.Dims(name) }

// SummarizeBatch aggregates per-lookup results into batch-level totals:
// match rate, summed and worst-case modelled latency, and the summed memory
// access counters.
func SummarizeBatch(results []Result) BatchReport { return core.SummarizeBatch(results) }

// Reader is a worker-pinned serving handle (see WithReplicas): all lookups
// through one Reader hit the same replica's snapshot and cache. On a
// classifier without replicas it transparently serves the shared path.
type Reader = core.Reader

// Reader returns the serving handle for the given worker id; ids map onto
// replicas round-robin, so a serving loop should hold one Reader per worker.
func (c *Classifier) Reader(worker int) *Reader { return c.inner.Reader(worker) }

// SelectEngine switches the lookup engine at run time — the generalised
// IPalg_s signal of the paper, extended across both tiers. The installed
// rules are re-programmed onto (or compiled into) the new engine.
func (c *Classifier) SelectEngine(name string) error { return c.inner.SelectEngine(name) }

// Engine returns the name of the engine actually answering lookups: the
// whole-packet engine when one is selected, the IP-segment field engine
// otherwise.
func (c *Classifier) Engine() string { return c.inner.ActiveEngineName() }

// Rules returns a copy of the installed rules in installation order.
func (c *Classifier) Rules() []Rule { return c.inner.InstalledRules() }

// RuleCount returns the number of installed rules.
func (c *Classifier) RuleCount() int { return c.inner.RuleCount() }

// RuleCapacity returns the rule capacity under the active engine.
func (c *Classifier) RuleCapacity() int { return c.inner.RuleCapacity() }

// Report assembles the full observability snapshot in one call: data-plane
// counters, served-request summary, update-plane counters, cache counters
// and the memory breakdown, read against a single published snapshot so the
// structural fields are mutually consistent even while updates are in
// flight. It supersedes the five per-surface accessors.
func (c *Classifier) Report() Report { return c.inner.Report() }

// Stats returns a snapshot of the accumulated data-plane counters.
//
// Deprecated: use Report, which returns these counters in its Stats field.
func (c *Classifier) Stats() Stats { return c.inner.Report().Stats }

// LookupCounters returns the classifier's served-request counters — lookups
// answered and matches returned.
//
// Deprecated: use Report, which returns these counters in its Lookups field.
func (c *Classifier) LookupCounters() LookupCounters { return c.inner.Report().Lookups }

// UpdateStats returns the update-plane counters: how many rule-update
// publishes were served by incremental deltas versus full rebuilds of the
// packet structure, the current delta debt, and the publish-latency
// histogram.
//
// Deprecated: use Report, which returns these counters in its Updates field.
func (c *Classifier) UpdateStats() UpdateStats { return c.inner.Report().Updates }

// CacheStats returns the microflow cache counters; ok is false when the
// classifier was built without WithCache.
//
// Deprecated: use Report, which returns these counters in its Cache field
// (with CacheEnabled).
func (c *Classifier) CacheStats() (stats CacheStats, ok bool) {
	r := c.inner.Report()
	return r.Cache, r.CacheEnabled
}

// ResetStats zeroes the counters without touching installed rules.
func (c *Classifier) ResetStats() { c.inner.ResetStats() }

// MemoryReport computes the current memory breakdown of the architecture.
//
// Deprecated: use Report, which returns this breakdown in its Memory field.
func (c *Classifier) MemoryReport() MemoryReport { return c.inner.Report().Memory }

// ThroughputGbps returns the modelled sustained line rate for the given
// packet size under the active engine.
func (c *Classifier) ThroughputGbps(packetBytes int) float64 {
	return c.inner.ThroughputGbps(packetBytes)
}

// LookupsPerSecond returns the modelled sustained lookup rate under the
// active engine.
func (c *Classifier) LookupsPerSecond() float64 { return c.inner.LookupsPerSecond() }

// ParseHeader builds a packet header from dotted-quad addresses.
func ParseHeader(srcIP string, srcPort uint16, dstIP string, dstPort uint16, protocol uint8) (Header, error) {
	src, err := fivetuple.ParseIPv4(srcIP)
	if err != nil {
		return Header{}, fmt.Errorf("sdnpc: source address: %w", err)
	}
	dst, err := fivetuple.ParseIPv4(dstIP)
	if err != nil {
		return Header{}, fmt.Errorf("sdnpc: destination address: %w", err)
	}
	return Header{SrcIP: src, DstIP: dst, SrcPort: srcPort, DstPort: dstPort, Protocol: protocol}, nil
}

// MustParseHeader is like ParseHeader but panics on error.
func MustParseHeader(srcIP string, srcPort uint16, dstIP string, dstPort uint16, protocol uint8) Header {
	h, err := ParseHeader(srcIP, srcPort, dstIP, dstPort, protocol)
	if err != nil {
		panic(err)
	}
	return h
}

// ParseHeader6 builds an IPv6 packet header from textual addresses such as
// "2001:db8::1". The header's Family is FamilyIPv6; its 32-bit address
// fields stay zero.
func ParseHeader6(srcIP string, srcPort uint16, dstIP string, dstPort uint16, protocol uint8) (Header, error) {
	src, err := fivetuple.ParseIPv6(srcIP)
	if err != nil {
		return Header{}, fmt.Errorf("sdnpc: source address: %w", err)
	}
	dst, err := fivetuple.ParseIPv6(dstIP)
	if err != nil {
		return Header{}, fmt.Errorf("sdnpc: destination address: %w", err)
	}
	return Header{
		Family:   fivetuple.FamilyIPv6,
		SrcIP6:   src,
		DstIP6:   dst,
		SrcPort:  srcPort,
		DstPort:  dstPort,
		Protocol: protocol,
	}, nil
}

// MustParseHeader6 is like ParseHeader6 but panics on error.
func MustParseHeader6(srcIP string, srcPort uint16, dstIP string, dstPort uint16, protocol uint8) Header {
	h, err := ParseHeader6(srcIP, srcPort, dstIP, dstPort, protocol)
	if err != nil {
		panic(err)
	}
	return h
}
