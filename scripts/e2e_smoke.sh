#!/usr/bin/env bash
# e2e_smoke.sh — end-to-end smoke test of the multi-tenant daemon.
#
# Builds cmd/sdnclassd, starts it on a loopback port, walks the service
# lifecycle over the wire (health, tenant create, rule install, single and
# batch classification, per-tenant and global stats), then checks a clean
# SIGTERM shutdown and that a second daemon on the same port exits non-zero.
# docs/SERVICE.md documents every endpoint exercised here. Run from anywhere;
# CI runs it in the e2e job.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)/sdnclassd"
LOG="$(mktemp)"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -f "$LOG"
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

fail() {
  echo "e2e_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$LOG" >&2
  exit 1
}

# "METHOD path expected_status [body]" -> response body on stdout.
req() {
  local method="$1" path="$2" want="$3" body="${4:-}"
  local out status
  if [ -n "$body" ]; then
    out=$(curl -s -w '\n%{http_code}' -X "$method" "$BASE$path" -d "$body")
  else
    out=$(curl -s -w '\n%{http_code}' -X "$method" "$BASE$path")
  fi
  status="${out##*$'\n'}"
  out="${out%$'\n'*}"
  if [ "$status" != "$want" ]; then
    fail "$method $path returned $status (want $want): $out"
  fi
  echo "$out"
}

# Assert stdin (a JSON body) contains the given substring.
expect() {
  local body needle="$1"
  body=$(cat)
  case "$body" in
    *"$needle"*) ;;
    *) fail "response missing ${needle}: ${body}" ;;
  esac
}

echo "e2e_smoke: building daemon"
go build -o "$BIN" ./cmd/sdnclassd

echo "e2e_smoke: starting daemon on :${PORT}"
"$BIN" -http "127.0.0.1:${PORT}" >"$LOG" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  curl -s -o /dev/null "$BASE/healthz" && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
req GET /healthz 200 | expect '"status":"ok"'

echo "e2e_smoke: tenant lifecycle"
req POST /v1/tenants 201 '{"id":"smoke","engine":"hypercuts","cache_capacity":1024}' \
  | expect '"engine":"hypercuts"'
req POST /v1/tenants 409 '{"id":"smoke"}' >/dev/null           # duplicate id conflicts
req POST /v1/tenants 201 '{"id":"smoke2","engine":"bst"}' >/dev/null   # second tenant, other tier

echo "e2e_smoke: rule install"
req POST /v1/tenants/smoke/rules 200 \
  '{"rules":[{"priority":0,"src":"10.0.0.0/8","action":"forward","action_arg":3},{"priority":1,"action":"drop"}]}' \
  | expect '"installed":2'

echo "e2e_smoke: classification"
req POST /v1/tenants/smoke/classify-batch 200 \
  '{"headers":[{"src_ip":"10.1.2.3","dst_ip":"1.1.1.1","dst_port":443,"proto":6},{"src_ip":"99.0.0.1","dst_ip":"2.2.2.2"}]}' \
  | expect '"packets":2'
req POST /v1/tenants/smoke/classify 200 '{"src_ip":"10.1.2.3","dst_ip":"1.1.1.1"}' \
  | expect '"action":"forward"'
req POST /v1/tenants/smoke/classify 400 '{"src_ip":"not-an-ip","dst_ip":"1.1.1.1"}' >/dev/null

echo "e2e_smoke: stats"
req GET /v1/tenants/smoke/stats 200 | expect '"lookups":3'
req GET /v1/stats 200 | expect '"tenants":2'

echo "e2e_smoke: bind failure exits non-zero"
if "$BIN" -http "127.0.0.1:${PORT}" >/dev/null 2>&1; then
  fail "second daemon on an occupied port exited zero"
fi

echo "e2e_smoke: graceful shutdown"
kill -TERM "$DAEMON_PID"
for i in $(seq 1 50); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
  fail "daemon still running after SIGTERM"
fi
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
grep -q "shutdown complete" "$LOG" || fail "daemon log missing 'shutdown complete'"

echo "e2e_smoke: OK"
