#!/usr/bin/env bash
# check_coverage.sh — fail when total statement coverage drops below the
# floor. The floor is intentionally below the current figure (~79%) so the
# gate catches real erosion (a new subsystem landing without tests), not
# noise from small refactors. Raised from 70 to 75 once the incremental
# update plane brought the write side under test.
#
# Usage: check_coverage.sh [floor-percent]   (default 75)
set -euo pipefail
cd "$(dirname "$0")/.."

floor="${1:-75}"
profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./... > /dev/null

total="$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
if [ -z "$total" ]; then
  echo "check_coverage: could not read the total from the cover profile" >&2
  exit 1
fi
echo "total statement coverage: ${total}% (floor: ${floor}%)"
awk -v total="$total" -v floor="$floor" 'BEGIN { exit (total+0 >= floor+0) ? 0 : 1 }' || {
  echo "check_coverage: coverage ${total}% is below the ${floor}% floor" >&2
  exit 1
}
