#!/usr/bin/env bash
# check_allocs.sh — the zero-allocation gate of the flat-memory hot path.
#
# Runs the testing.AllocsPerRun-based tests asserting 0 allocs/op for Lookup,
# LookupBatchInto and the multi-action LookupAllInto on every selectable
# engine of both tiers, cached and uncached, plus the cross-product
# combination mode. A single stray
# allocation on any serving path fails the gate, so the arena layout's
# headline contract cannot erode silently — these are the same tests a
# developer runs locally with:
#
#	go test ./internal/core/ -run 'ZeroAllocs'
#
# -count=1 defeats the test cache: the gate must re-measure on the current
# build, not replay a cached verdict.
set -euo pipefail
cd "$(dirname "$0")/.."

go test -count=1 -run 'TestLookupZeroAllocs|TestLookupBatchZeroAllocs|TestLookupZeroAllocsCrossProduct|TestLookupAllZeroAllocs' -v ./internal/core/ | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)' || {
  echo "check_allocs: the zero-allocation gate failed" >&2
  exit 1
}
