#!/usr/bin/env bash
# check_bench_record.sh — CI gate for the persisted benchmark artifact.
#
# Runs the recording sweep (cmd/experiments -experiment sweep) on a small,
# fast workload into a scratch directory, then validates the written
# BENCH_<date>_<host>.json against the sdnpc-bench/v1 schema contract with
# an independent reader (python3), so a drift between writer and schema
# cannot slip through just because both sides share the Go struct.
#
# On success the artifact's path is exported via $GITHUB_OUTPUT (key
# `record`) when running under GitHub Actions, so the workflow can upload it.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="$(mktemp -d)"
trap 'rm -rf "$outdir"' EXIT

# Small + single-engine keeps this under a minute on a CI runner while still
# exercising all three sweeps (engines, throughput, churn) end to end.
go run ./cmd/experiments -experiment sweep \
  -class acl -size 1k -packets 2000 -churn-ops 200 -workers 1,2 \
  -ip-engine mbt -record-dir "$outdir" > /dev/null

record="$(ls "$outdir"/BENCH_*.json)"
python3 - "$record" <<'EOF'
import json, re, sys

path = sys.argv[1]
with open(path) as f:
    rec = json.load(f)

def fail(msg):
    sys.exit(f"check_bench_record: {path}: {msg}")

if rec.get("schema") != "sdnpc-bench/v1":
    fail(f"schema {rec.get('schema')!r}, want 'sdnpc-bench/v1'")
if not re.fullmatch(r"\d{4}-\d{2}-\d{2}", rec.get("date", "")):
    fail(f"date {rec.get('date')!r} is not YYYY-MM-DD")
if not rec.get("host"):
    fail("no host")
env = rec.get("environment", {})
for key in ("go_version", "goos", "goarch", "num_cpu"):
    if not env.get(key):
        fail(f"environment.{key} missing")
cfg = rec.get("config", {})
for key in ("class", "size", "rules", "packets"):
    if not cfg.get(key):
        fail(f"config.{key} missing")
results = rec.get("results", [])
if not results:
    fail("no results")
experiments = {r.get("experiment") for r in results}
for want in ("engines", "throughput", "updates"):
    if want not in experiments:
        fail(f"no {want!r} cells (have {sorted(experiments)})")
for i, r in enumerate(results):
    if not r.get("experiment") or not r.get("engine"):
        fail(f"results[{i}] missing experiment or engine")
    metrics = r.get("metrics", {})
    if not metrics:
        fail(f"results[{i}] has no metrics")
    for name, value in metrics.items():
        if not isinstance(value, (int, float)):
            fail(f"results[{i}].metrics[{name!r}] is not numeric")
name = path.rsplit("/", 1)[-1]
if not re.fullmatch(r"BENCH_\d{4}-\d{2}-\d{2}_[A-Za-z0-9-]+\.json", name):
    fail(f"file name {name!r} does not match BENCH_<date>_<host>.json")
print(f"check_bench_record: OK — {name}: {len(results)} cells, "
      f"{sorted(experiments)} on {cfg['class']}/{cfg['size']} ({cfg['rules']} rules)")
EOF

# Hand the artifact to the workflow for upload (survives the trap's cleanup).
if [[ -n "${GITHUB_OUTPUT:-}" ]]; then
  keep="${RUNNER_TEMP:-/tmp}/$(basename "$record")"
  cp "$record" "$keep"
  echo "record=$keep" >> "$GITHUB_OUTPUT"
fi
