#!/usr/bin/env bash
# bench_record.sh — run the recording sweep and persist a BENCH_*.json
# perf artifact at the repo root (or $RECORD_DIR).
#
# The artifact (schema sdnpc-bench/v1, see internal/bench/record.go) captures
# every measured cell of the engine, throughput and churn sweeps together
# with the workload configuration and the machine environment — the perf
# trajectory across PRs, the advisor's fallback engine ranking
# (bench.LatestRecord), and the CI bench job's uploaded artifact.
#
# Knobs (environment):
#   RECORD_DIR   output directory          (default: repo root)
#   CLASS/SIZE   ClassBench workload       (default: acl / 1k)
#   PACKETS      trace length              (default: 10000)
#   CHURN_OPS    churn ops per update cell (default: 1000)
#   ENGINE       restrict to one engine    (default: all selectable)
set -euo pipefail
cd "$(dirname "$0")/.."

RECORD_DIR="${RECORD_DIR:-.}"
CLASS="${CLASS:-acl}"
SIZE="${SIZE:-1k}"
PACKETS="${PACKETS:-10000}"
CHURN_OPS="${CHURN_OPS:-1000}"
ENGINE="${ENGINE:-}"

args=(-experiment sweep -class "$CLASS" -size "$SIZE" -packets "$PACKETS"
      -churn-ops "$CHURN_OPS" -record-dir "$RECORD_DIR")
if [[ -n "$ENGINE" ]]; then
  args+=(-ip-engine "$ENGINE")
fi

go run ./cmd/experiments "${args[@]}"
