#!/usr/bin/env python3
"""Benchmark regression gate for the CI bench job.

Reads two `go test -bench` output files (base and head), averages the ns/op
of every benchmark that appears in both, and fails when the geometric-mean
slowdown exceeds the given percentage. benchstat prints the human-readable
delta next to this gate; this script exists so the pass/fail decision is a
stable, dependency-free computation rather than a parse of benchstat's
formatting.

Usage: benchgate.py BASE_FILE HEAD_FILE MAX_REGRESSION_PERCENT
"""

import math
import re
import sys
from collections import defaultdict

# "BenchmarkThroughput/mbt/workers_4-8   295   128144 ns/op   7804 pkts/s"
LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op")


def read_bench(path):
    samples = defaultdict(list)
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                samples[m.group(1)].append(float(m.group(2)))
    return {name: sum(vals) / len(vals) for name, vals in samples.items()}


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    base = read_bench(sys.argv[1])
    head = read_bench(sys.argv[2])
    limit = float(sys.argv[3]) / 100.0

    common = sorted(set(base) & set(head))
    if not common:
        print("benchgate: no common benchmarks between base and head; nothing to gate")
        return

    log_sum = 0.0
    worst = (None, 0.0)
    for name in common:
        ratio = head[name] / base[name]
        log_sum += math.log(ratio)
        if ratio > worst[1]:
            worst = (name, ratio)
        print(f"{name}: {base[name]:.0f} -> {head[name]:.0f} ns/op ({(ratio - 1) * 100:+.1f}%)")

    geomean = math.exp(log_sum / len(common))
    print(f"\nbenchgate: geomean ns/op ratio over {len(common)} benchmarks: "
          f"{geomean:.3f} ({(geomean - 1) * 100:+.1f}%), worst {worst[0]} {(worst[1] - 1) * 100:+.1f}%")
    if geomean > 1.0 + limit:
        sys.exit(f"benchgate: FAIL — geomean slowdown {(geomean - 1) * 100:.1f}% "
                 f"exceeds the {limit * 100:.0f}% budget")
    print("benchgate: OK")


if __name__ == "__main__":
    main()
