#!/usr/bin/env bash
# check_docs.sh — fail when the docs drift from the code.
#
# The engine registry is the source of truth for which algorithms are
# servable; docs/ENGINES.md and the README engine matrix must list every
# registered name, and docs/ARCHITECTURE.md must keep naming the layers it
# maps. The checks themselves are Go tests (docs_test.go at the module root)
# so they read the registry directly instead of a hand-maintained list.
set -euo pipefail
cd "$(dirname "$0")/.."

go test -run 'TestEnginesDocCoversRegistry|TestReadmeCoversSelectableEngines|TestArchitectureDocExists|TestDocsCoverCacheFlags|TestDocsCoverUpdatePlane|TestDocsCoverReplicationKnobs|TestServiceDocCoversRoutes|TestDocsCoverSelfTuning|TestDocsCoverDimensionModel' .
