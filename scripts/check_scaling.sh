#!/usr/bin/env bash
# check_scaling.sh — fail when the replicated serving fleet stops scaling.
#
# Runs ThroughputSweep (via TestReplicatedScalingGate) at 1 worker and at
# NumCPU workers in replicated-fleet mode beside the shared-pointer baseline,
# and fails when the replicated NumCPU-worker speedup over its own 1-worker
# row falls below the floor. The gate is opt-in behind SCALING_GATE=1 because
# it is a timing assertion; SCALING_GATE_FLOOR overrides the default 1.2x
# floor for noisy or small runners. Single-CPU machines skip (there is no
# scaling to measure).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALING_GATE=1 go test -count=1 -v -run TestReplicatedScalingGate .
