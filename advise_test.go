package sdnpc

import (
	"testing"
	"time"
)

// adviseForTrace builds a cached, sampling classifier, replays the trace
// through it so the advisor sees real cache and sampler signals, and returns
// the engine its top engine recommendation names ("" when it recommends
// keeping the active engine).
func adviseForTrace(t *testing.T, rs *RuleSet, opts TraceOptions) string {
	t.Helper()
	c := MustNew(WithCache(0, 2048), WithSampling(4096))
	defer c.Close()
	if _, err := c.InsertAll(rs); err != nil {
		t.Fatal(err)
	}
	for _, h := range GenerateTrace(rs, opts) {
		c.Lookup(h)
	}
	recs, err := c.Advise("mbt", "bst", "hypercuts")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Kind == EngineRecommendation {
			t.Logf("trace %+v → %s", opts, r)
			return r.Engine
		}
	}
	t.Logf("trace %+v → no engine recommendation (active engine already right)", opts)
	return ""
}

// TestAdviseAdaptsToWorkload is the self-tuning acceptance pin: the advisor
// must read the workload, not just the engines. A cache-unfriendly trace
// (every flow distinct, the microflow cache useless) puts every packet on
// the engine, so the advisor weighs raw speed and recommends the fast
// whole-packet engine; a heavy-tailed Zipf trace is absorbed by the cache,
// so the engine behind it is chosen for memory leanness instead. The two
// workloads must yield different engine recommendations.
func TestAdviseAdaptsToWorkload(t *testing.T) {
	rs := MustGenerateRuleSet("acl", "1k")

	// Unique-flow flood: MatchFraction 1 with no locality draws a fresh
	// header per packet, so the cache hit rate collapses.
	unfriendly := adviseForTrace(t, rs, TraceOptions{Packets: 4096, Seed: 1, MatchFraction: 1})

	// Heavy-tailed flow replay: 64 flows under Zipf(1.3) keep the cache hot.
	zipf := adviseForTrace(t, rs, TraceOptions{Packets: 4096, Seed: 2, ZipfSkew: 1.3, Flows: 64})

	if unfriendly == "" {
		t.Fatal("cache-unfriendly workload must recommend an engine switch away from the default")
	}
	if unfriendly == zipf {
		t.Fatalf("advisor recommended %q for both workloads; cache-unfriendly and Zipf traffic must rank engines differently", unfriendly)
	}
}

// TestAutoTuneLifecycle pins the facade wiring of the background tuner:
// WithAutoTune starts it (implying sampling), AutoApplied exposes its log,
// and Close stops it idempotently.
func TestAutoTuneLifecycle(t *testing.T) {
	c := MustNew(WithAutoTune(time.Hour))
	defer c.Close()
	if !c.AutoTuneEnabled() {
		t.Fatal("WithAutoTune must enable the tuner")
	}
	if !c.inner.SamplingEnabled() {
		t.Fatal("WithAutoTune must imply header sampling")
	}
	if got := c.AutoApplied(); len(got) != 0 {
		t.Fatalf("fresh tuner AutoApplied() = %v, want empty", got)
	}
	c.Close()
	c.Close() // idempotent

	plain := MustNew()
	defer plain.Close()
	if plain.AutoTuneEnabled() {
		t.Fatal("default classifier must not auto-tune")
	}
	if got := plain.AutoApplied(); got != nil {
		t.Fatalf("AutoApplied() without a tuner = %v, want nil", got)
	}
}
