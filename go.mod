module sdnpc

go 1.24
