module sdnpc

go 1.23
