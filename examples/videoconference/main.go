// Videoconference example: the scenario §III.A of the paper uses to motivate
// configurability. A multi-end videoconferencing service needs lookup speed
// above all, so the controller selects the MBT engine; a logging / archival
// application with a very large rule filter instead needs capacity, so it
// selects the BST engine. This example quantifies the trade-off on the same
// rule set by switching the engine-selection signal at run time through the
// public sdnpc package.
//
// Run with:
//
//	go run ./examples/videoconference
package main

import (
	"fmt"
	"log"

	"sdnpc"
)

func main() {
	// The conferencing service's flows: RTP/RTCP port ranges towards the
	// media bridge plus signalling, layered on top of an ACL-style policy.
	policy := sdnpc.MustGenerateRuleSet("acl", "1k")
	media := []sdnpc.Rule{
		sdnpc.NewRule(0).To("198.51.100.0/24").DstPorts(16384, 32767).Proto(sdnpc.UDP).Forward(7).MustBuild(), // RTP media
		sdnpc.NewRule(0).To("198.51.100.0/24").DstPort(5061).Proto(sdnpc.TCP).Forward(7).MustBuild(),          // SIP over TLS signalling
	}
	// Media rules take the highest priorities so conferencing traffic never
	// falls through to the slower policy rules.
	rules := append(media, policy.Rules()...)
	ruleSet := sdnpc.NewRuleSet("videoconference", rules)

	classifier, err := sdnpc.New()
	if err != nil {
		log.Fatalf("creating classifier: %v", err)
	}
	if _, err := classifier.InsertAll(ruleSet); err != nil {
		log.Fatalf("installing rules: %v", err)
	}

	trace := sdnpc.GenerateTrace(ruleSet, sdnpc.TraceOptions{
		Packets: 30000, Seed: 23, MatchFraction: 0.95, Locality: 0.7,
	})

	fmt.Println("Application requirement A: real-time multi-end videoconferencing (speed critical)")
	runPhase(classifier, ruleSet, trace, "mbt")

	fmt.Println("\nApplication requirement B: flow archival with very large rule filters (capacity critical)")
	runPhase(classifier, ruleSet, trace, "bst")
}

func runPhase(classifier *sdnpc.Classifier, ruleSet *sdnpc.RuleSet, trace []sdnpc.Header, engineName string) {
	if err := classifier.SelectEngine(engineName); err != nil {
		log.Fatalf("selecting %s: %v", engineName, err)
	}
	classifier.ResetStats()
	mismatches := 0
	for _, h := range trace {
		wantIdx, wantOK := ruleSet.Classify(h)
		got := classifier.Lookup(h)
		if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
			mismatches++
		}
	}
	stats := classifier.Stats()
	report := classifier.MemoryReport()
	fmt.Printf("  controller selects the %q engine\n", engineName)
	fmt.Printf("  sustained rate: %.1f Mlookups/s -> %.2f Gbps at 40-byte packets, %.2f Gbps at 100-byte packets\n",
		classifier.LookupsPerSecond()/1e6, classifier.ThroughputGbps(40), classifier.ThroughputGbps(100))
	fmt.Printf("  average lookup latency: %.1f cycles\n", stats.AverageLatencyCycles())
	fmt.Printf("  rule capacity: %d rules; IP-engine memory in use: %.1f Kbit\n",
		classifier.RuleCapacity(), float64(report.IPAlgorithmUsedBits())/1024)
	fmt.Printf("  verdict mismatches against the reference: %d of %d packets (avg %.2f field accesses)\n",
		mismatches, len(trace), stats.AverageFieldAccesses())
}
