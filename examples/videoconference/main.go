// Videoconference example: the scenario §III.A of the paper uses to motivate
// configurability. A multi-end videoconferencing service needs lookup speed
// above all, so the controller selects the MBT configuration; a logging /
// archival application with a very large rule filter instead needs capacity,
// so it selects the BST configuration. This example quantifies the trade-off
// on the same rule set by switching the IPalg_s signal at run time.
//
// Run with:
//
//	go run ./examples/videoconference
package main

import (
	"fmt"
	"log"

	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
)

func main() {
	// The conferencing service's flows: RTP/RTCP port ranges towards the
	// media bridge plus signalling, layered on top of an ACL-style policy.
	policy := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	media := []fivetuple.Rule{
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("198.51.100.0/24"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.PortRange{Lo: 16384, Hi: 32767}, // RTP media
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoUDP),
			Action:    fivetuple.ActionForward,
			ActionArg: 7,
		},
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("198.51.100.0/24"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(5061), // SIP over TLS signalling
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			Action:    fivetuple.ActionForward,
			ActionArg: 7,
		},
	}
	rules := policy.Rules()
	// Media rules take the highest priorities so conferencing traffic never
	// falls through to the slower policy rules.
	rules = append(media, rules...)
	ruleSet := fivetuple.NewRuleSet("videoconference", rules)

	classifier, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatalf("creating classifier: %v", err)
	}
	if _, err := classifier.InstallRuleSet(ruleSet); err != nil {
		log.Fatalf("installing rules: %v", err)
	}

	trace := classbench.GenerateTrace(ruleSet, classbench.TraceConfig{
		Packets: 30000, Seed: 23, MatchFraction: 0.95, Locality: 0.7,
	})

	fmt.Println("Application requirement A: real-time multi-end videoconferencing (speed critical)")
	runPhase(classifier, ruleSet, trace, memory.SelectMBT)

	fmt.Println("\nApplication requirement B: flow archival with very large rule filters (capacity critical)")
	runPhase(classifier, ruleSet, trace, memory.SelectBST)
}

func runPhase(classifier *core.Classifier, ruleSet *fivetuple.RuleSet, trace []fivetuple.Header, alg memory.AlgSelect) {
	if err := classifier.SelectIPAlgorithm(alg); err != nil {
		log.Fatalf("selecting %v: %v", alg, err)
	}
	classifier.ResetStats()
	mismatches := 0
	for _, h := range trace {
		wantIdx, wantOK := ruleSet.Classify(h)
		got := classifier.Lookup(h)
		if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
			mismatches++
		}
	}
	stats := classifier.Stats()
	report := classifier.MemoryReport()
	pipeline := classifier.Pipeline()
	fmt.Printf("  controller sets IPalg_s to %v\n", alg)
	fmt.Printf("  sustained rate: %.1f Mlookups/s -> %.2f Gbps at 40-byte packets, %.2f Gbps at 100-byte packets\n",
		classifier.LookupsPerSecond()/1e6, classifier.ThroughputGbps(40), classifier.ThroughputGbps(100))
	fmt.Printf("  per-packet latency: %d cycles (%.0f ns)\n",
		pipeline.LatencyCycles(), pipeline.LatencySeconds()*1e9)
	fmt.Printf("  rule capacity: %d rules; IP-algorithm memory in use: %.1f Kbit\n",
		classifier.RuleCapacity(), float64(report.IPAlgorithmUsedBits())/1024)
	fmt.Printf("  verdict mismatches against the reference: %d of %d packets (avg %.2f field accesses)\n",
		mismatches, len(trace), stats.AverageFieldAccesses())
}
