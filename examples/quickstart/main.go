// Quickstart: build a classifier through the public sdnpc package, install a
// handful of rules with the fluent builder, classify a few packets, switch
// lookup engines at run time and print the architecture's throughput and
// memory figures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdnpc"
)

func main() {
	// The default configuration is the paper's evaluated geometry: MBT IP
	// lookup, 8K-rule filter, 133.51 MHz clock, exact label combination.
	classifier, err := sdnpc.New()
	if err != nil {
		log.Fatalf("creating classifier: %v", err)
	}

	// A tiny access-control policy: allow web traffic to the DMZ, punt DNS
	// to the controller, drop everything else.
	rules := []sdnpc.Rule{
		sdnpc.NewRule(0).To("203.0.113.0/24").DstPort(443).Proto(sdnpc.TCP).Forward(1).MustBuild(),
		sdnpc.NewRule(1).From("10.0.0.0/8").DstPort(53).Proto(sdnpc.UDP).Punt().MustBuild(),
		sdnpc.WildcardRule(2, sdnpc.Drop),
	}
	for _, r := range rules {
		report, err := classifier.Insert(r)
		if err != nil {
			log.Fatalf("inserting rule %s: %v", r, err)
		}
		fmt.Printf("installed rule %d: %d new labels, %d engine writes, %d clock cycles\n",
			r.Priority, report.NewLabels, report.EngineWrites, report.ClockCycles)
	}

	packets := []sdnpc.Header{
		sdnpc.MustParseHeader("198.51.100.7", 50000, "203.0.113.10", 443, sdnpc.TCP),
		sdnpc.MustParseHeader("10.1.2.3", 5353, "8.8.8.8", 53, sdnpc.UDP),
		sdnpc.MustParseHeader("192.0.2.1", 1, "192.0.2.2", 2, sdnpc.GRE),
	}
	for _, h := range packets {
		result := classifier.Lookup(h)
		fmt.Printf("%-55s -> matched=%v action=%v priority=%d latency=%d cycles\n",
			h, result.Matched, result.Action, result.Priority, result.LatencyCycles)
	}

	// Every registered engine of both tiers is selectable at run time — the
	// generalised IPalg_s signal of the paper, extended to the whole-packet
	// baselines of Table I. Sweep them all.
	fmt.Printf("\nregistered engines: %v\n", sdnpc.Engines())
	for _, name := range sdnpc.Engines() {
		if err := classifier.SelectEngine(name); err != nil {
			log.Fatalf("selecting %s: %v", name, err)
		}
		report := classifier.MemoryReport()
		tier, nodeBits := "field ", report.IPAlgorithmUsedBits()
		if report.PacketEngine != "" {
			tier, nodeBits = "packet", report.PacketEngineUsedBits
		}
		fmt.Printf("%-10s %s %8.2f Gbps at 40-byte packets, %5d-rule capacity, %7.1f Kbit node storage\n",
			name, tier, classifier.ThroughputGbps(40), classifier.RuleCapacity(),
			float64(nodeBits)/1024)
	}
}
