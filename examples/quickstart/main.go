// Quickstart: build a classifier, install a handful of rules, classify a few
// packets, and print the architecture's throughput and memory figures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
)

func main() {
	// The default configuration is the paper's evaluated geometry: MBT IP
	// lookup, 8K-rule filter, 133.51 MHz clock, exact label combination.
	classifier, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatalf("creating classifier: %v", err)
	}

	// A tiny access-control policy: allow web traffic to the DMZ, rate-limit
	// DNS to the controller, drop everything else.
	rules := []fivetuple.Rule{
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("203.0.113.0/24"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(443),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			Priority:  0,
			Action:    fivetuple.ActionForward,
			ActionArg: 1,
		},
		{
			SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
			DstPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(53),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoUDP),
			Priority:  1,
			Action:    fivetuple.ActionController,
		},
		fivetuple.Wildcard(2, fivetuple.ActionDrop),
	}
	for _, r := range rules {
		report, err := classifier.InsertRule(r)
		if err != nil {
			log.Fatalf("inserting rule %s: %v", r, err)
		}
		fmt.Printf("installed rule %d: %d new labels, %d engine writes, %d clock cycles\n",
			r.Priority, report.NewLabels, report.EngineWrites, report.ClockCycles)
	}

	packets := []fivetuple.Header{
		{SrcIP: fivetuple.MustParseIPv4("198.51.100.7"), DstIP: fivetuple.MustParseIPv4("203.0.113.10"), SrcPort: 50000, DstPort: 443, Protocol: fivetuple.ProtoTCP},
		{SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("8.8.8.8"), SrcPort: 5353, DstPort: 53, Protocol: fivetuple.ProtoUDP},
		{SrcIP: fivetuple.MustParseIPv4("192.0.2.1"), DstIP: fivetuple.MustParseIPv4("192.0.2.2"), SrcPort: 1, DstPort: 2, Protocol: fivetuple.ProtoGRE},
	}
	for _, h := range packets {
		result := classifier.Lookup(h)
		fmt.Printf("%-55s -> matched=%v action=%v priority=%d latency=%d cycles\n",
			h, result.Matched, result.Action, result.Priority, result.LatencyCycles)
	}

	fmt.Printf("\nMBT configuration: %.2f Gbps at 40-byte packets, %d-rule capacity\n",
		classifier.ThroughputGbps(40), classifier.RuleCapacity())

	// Flip the IPalg_s signal to the memory-efficient BST configuration, as
	// the SDN controller would for a capacity-bound application.
	if err := classifier.SelectIPAlgorithm(memory.SelectBST); err != nil {
		log.Fatalf("selecting BST: %v", err)
	}
	fmt.Printf("BST configuration: %.2f Gbps at 40-byte packets, %d-rule capacity\n",
		classifier.ThroughputGbps(40), classifier.RuleCapacity())

	report := classifier.MemoryReport()
	fmt.Printf("block memory provisioned: %d bits (%.2f Mbit), in use: %d bits\n",
		report.TotalProvisionedBits(), float64(report.TotalProvisionedBits())/(1<<20), report.TotalUsedBits())
}
