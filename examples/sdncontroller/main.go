// SDN controller example: the full control loop of Fig. 1/Fig. 2 on one
// machine. A controller owns an ACL policy and pushes it to a software switch
// over the OpenFlow-like control channel; the switch classifies traffic with
// the configurable architecture; DNS flows are punted to the controller,
// which reacts by installing a more specific rule at run time (the
// incremental-update path of §IV.A).
//
// Rules, headers and workloads come from the public sdnpc package; the
// controller / data-plane pair itself is the internal reference
// implementation of the control loop.
//
// Run with:
//
//	go run ./examples/sdncontroller
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"sdnpc"
	"sdnpc/internal/core"
	"sdnpc/internal/sdn/controller"
	"sdnpc/internal/sdn/dataplane"
	"sdnpc/internal/sdn/openflow"
)

func main() {
	policy := sdnpc.MustGenerateRuleSet("acl", "1k")

	// Punt DNS to the controller so it can decide per-resolver policies.
	dnsRule := sdnpc.NewRule(0).From("10.0.0.0/8").DstPort(53).Proto(sdnpc.UDP).Punt().MustBuild()
	rules := append([]sdnpc.Rule{dnsRule}, policy.Rules()...)
	ruleSet := sdnpc.NewRuleSet("sdn-policy", rules)

	var punts atomic.Uint64
	ctrl := controller.New(ruleSet, controller.ProfileThroughput, func(sw string, p openflow.PacketIn) {
		punts.Add(1)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go func() { _ = ctrl.Serve(ln) }()
	defer ctrl.Stop()

	sw, err := dataplane.New(core.DefaultConfig())
	if err != nil {
		log.Fatalf("dataplane: %v", err)
	}
	defer sw.Close()
	if err := sw.Connect(ln.Addr().String()); err != nil {
		log.Fatalf("connect: %v", err)
	}
	waitForRules(sw, ruleSet.Len())
	fmt.Printf("switch programmed with %d rules over %s (IP engine %q)\n",
		sw.Classifier().RuleCount(), ln.Addr(), sw.Classifier().IPEngineName())

	// A client resolves names: the first packets are punted to the controller.
	dnsQuery := sdnpc.MustParseHeader("10.20.30.40", 40000, "192.0.2.53", 53, sdnpc.UDP)
	for i := 0; i < 3; i++ {
		if _, err := sw.ProcessPacket(dnsQuery); err != nil {
			log.Fatalf("processing packet: %v", err)
		}
	}
	waitFor(func() bool { return punts.Load() >= 3 })
	fmt.Printf("controller received %d packet-in messages for DNS traffic\n", punts.Load())

	// The controller reacts by installing a specific allow rule for this
	// resolver at the highest priority and retiring the punt-everything
	// rule — two incremental flow-mods on the §IV.A update path.
	allowResolver := sdnpc.NewRule(0).
		From("10.0.0.0/8").To("192.0.2.53/32").
		DstPort(53).Proto(sdnpc.UDP).
		Forward(2).MustBuild()
	if err := ctrl.AddRule(allowResolver); err != nil {
		log.Fatalf("pushing incremental rule: %v", err)
	}
	waitForRules(sw, ruleSet.Len()+1)
	if err := ctrl.RemoveRule(dnsRule); err != nil {
		log.Fatalf("removing punt rule: %v", err)
	}
	waitFor(func() bool { return sw.Classifier().RuleCount() == ruleSet.Len() })
	fmt.Println("controller swapped the punt rule for a specific allow rule (3 clock cycles of upload per flow-mod)")

	verdict, err := sw.ProcessPacket(dnsQuery)
	if err != nil {
		log.Fatalf("processing packet: %v", err)
	}
	fmt.Printf("subsequent DNS packets are now handled in hardware: action=%v egress port=%d (punted=%v)\n",
		verdict.Action, verdict.EgressPort, verdict.PuntedToController)

	// The controller can also re-programme the lookup engine by name over
	// the control channel — the generalised IPalg_s signal.
	if err := ctrl.SelectEngine("bst"); err != nil {
		log.Fatalf("selecting engine: %v", err)
	}
	waitFor(func() bool { return sw.Classifier().IPEngineName() == "bst" })
	fmt.Printf("controller re-programmed the data plane to the %q engine (capacity %d rules)\n",
		sw.Classifier().IPEngineName(), sw.Classifier().RuleCapacity())

	// Background traffic keeps flowing through the policy.
	trace := sdnpc.GenerateTrace(policy, sdnpc.TraceOptions{Packets: 5000, Seed: 3, MatchFraction: 0.9})
	for _, h := range trace {
		if _, err := sw.ProcessPacket(h); err != nil {
			log.Fatalf("processing packet: %v", err)
		}
	}
	counters := sw.Counters()
	fmt.Printf("\nswitch counters: total=%d forwarded=%d dropped=%d punted=%d table-miss=%d flow-adds=%d\n",
		counters.Total, counters.Forwarded, counters.Dropped, counters.Punted, counters.TableMiss, counters.FlowAdds)
	fmt.Printf("controller packet-ins: %d\n", ctrl.PacketIns())
}

func waitForRules(sw *dataplane.Switch, want int) {
	waitFor(func() bool { return sw.Classifier().RuleCount() >= want })
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for the control plane")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
