// Firewall example: load a full firewall-style filter set (fw1, Table III)
// through the public sdnpc package, replay a synthetic trace against it and
// compare the architecture's verdicts with a linear reference classifier,
// then print the data-plane statistics the paper's evaluation is built on.
//
// Run with:
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"

	"sdnpc"
)

func main() {
	// fw1-1K: the firewall filter set of Table III.
	rules := sdnpc.MustGenerateRuleSet("fw", "1k")
	fmt.Printf("loaded %s with %d rules\n", rules.Name, rules.Len())

	classifier, err := sdnpc.New()
	if err != nil {
		log.Fatalf("creating classifier: %v", err)
	}
	installReport, err := classifier.InsertAll(rules)
	if err != nil {
		log.Fatalf("installing rules: %v", err)
	}
	fmt.Printf("installed in %d clock cycles of memory upload, %d unique labels created\n",
		installReport.ClockCycles, installReport.NewLabels)

	trace := sdnpc.GenerateTrace(rules, sdnpc.TraceOptions{
		Packets: 20000, Seed: 5, MatchFraction: 0.85, Locality: 0.5,
	})
	mismatches := 0
	dropped := 0
	for _, h := range trace {
		wantIdx, wantOK := rules.Classify(h)
		got := classifier.Lookup(h)
		if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
			mismatches++
		}
		if got.Matched && got.Action == sdnpc.Drop {
			dropped++
		}
	}
	stats := classifier.Stats()
	fmt.Printf("replayed %d packets: %d verdict mismatches against the reference classifier\n",
		len(trace), mismatches)
	fmt.Printf("dropped by policy: %d packets (%.1f%%)\n", dropped, 100*float64(dropped)/float64(len(trace)))
	fmt.Printf("average field memory accesses per packet: %.2f\n", stats.AverageFieldAccesses())
	fmt.Printf("average label combinations probed per packet: %.2f\n", stats.AverageCombinations())
	fmt.Printf("average lookup latency: %.1f cycles\n", stats.AverageLatencyCycles())

	report := classifier.MemoryReport()
	fmt.Printf("IP engine %q memory in use: %.1f Kbit; rule filter occupancy: %d/%d rules\n",
		report.IPEngine, float64(report.IPAlgorithmUsedBits())/1024, report.RulesInstalled, report.RuleCapacity)
}
